//! The unified channel abstraction and the shared transceiver engine.
//!
//! The paper evaluates two covert channels with very different physical
//! mechanisms — Prime+Probe over shared LLC sets (Section III) and timing
//! contention on the ring/LLC ports (Section IV) — but an identical outer
//! loop: calibrate, move a bit string one symbol at a time, classify what the
//! receiver saw, and report (bandwidth, error rate). This module factors that
//! outer loop out of the channels:
//!
//! * [`CovertChannel`] is the narrow surface a channel implements — move one
//!   *frame* of raw bits ([`CovertChannel::transmit_frame`]) and describe
//!   itself ([`CovertChannel::calibrate`], diagnostics, nominal symbol time).
//! * [`Transceiver`] owns everything above the symbol level: warm-up,
//!   splitting payloads into frames, the [`crate::protocol::FRAME_PREAMBLE`]
//!   sync marker, bounded retransmission of desynchronized frames, and
//!   [`TransmissionReport`] assembly through the non-aborting constructors.
//! * [`DesyncModel`] — the clock-disparity slip model both GPU-paced channels
//!   share — lives here so any backend/channel pair can reuse it.
//!
//! Channels are generic over [`soc_sim::backend::MemorySystem`], so the same
//! engine drives a channel against the paper's Kaby Lake + Gen9 model, the
//! partitioned-LLC mitigation, a Gen11-class topology, or any future backend.

use crate::error::ChannelError;
use crate::metrics::TransmissionReport;
use crate::protocol::{deframe_bits, frame_bits, ProbeObservation, FRAME_PREAMBLE};
use rand::rngs::SmallRng;
use rand::Rng;
use soc_sim::clock::Time;
use soc_sim::prelude::MemorySystem;

/// One-line description of a backend's LLC geometry, shared by every
/// channel's [`ChannelDiagnostics`].
pub fn backend_summary<M: MemorySystem>(soc: &M) -> String {
    let llc = soc.llc().config();
    format!(
        "LLC {} MB / {} slices x {} ways{}",
        llc.capacity_bytes() / (1024 * 1024),
        llc.slices(),
        llc.ways,
        if soc.config().llc_partition.is_some() {
            ", way-partitioned"
        } else {
            ""
        }
    )
}

/// Channel-agnostic summary of a completed calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Nominal simulated time to move one symbol (one protocol round).
    pub symbol_time: Time,
    /// Separation quality of the channel's decision statistic: the ratio of
    /// the two symbol populations' distance to their spread. Greater than 1
    /// means the calibration found a usable channel.
    pub quality: f64,
    /// Human-readable calibration summary for reports.
    pub detail: String,
}

impl Calibration {
    /// Whether the calibration found a usable channel.
    pub fn is_usable(&self) -> bool {
        self.quality > 1.0 && self.symbol_time > Time::ZERO
    }
}

/// The receiver-side outcome of one transmitted frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameResult {
    /// Bits the receiver decoded, in order.
    pub received: Vec<bool>,
    /// Simulated time the frame took end to end.
    pub elapsed: Time,
}

/// Key/value diagnostics a channel exposes for reports and sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelDiagnostics {
    /// Channel family label (e.g. `"llc-prime-probe"`).
    pub channel: &'static str,
    /// Description of the backend the channel runs against.
    pub backend: String,
    /// Named scalar diagnostics (thresholds, redundancy, noise levels, …).
    pub entries: Vec<(&'static str, f64)>,
}

impl ChannelDiagnostics {
    /// Looks up a named diagnostic.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// A covert channel, reduced to the surface the [`Transceiver`] needs.
///
/// Implementations move raw bits; framing, retries and reporting belong to
/// the engine. `transmit_frame` must return exactly one received bit per
/// input bit — the engine checks and surfaces a
/// [`ChannelError::ReportShape`] otherwise.
pub trait CovertChannel {
    /// Calibrates the channel (idempotent: later calls return the cached
    /// result) and reports the calibration summary.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] when the channel cannot be made usable
    /// (e.g. the custom timer cannot separate the cache levels).
    fn calibrate(&mut self) -> Result<Calibration, ChannelError>;

    /// Moves one frame of raw bits, returning the receiver's view.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] on protocol-level failures (empty
    /// observation sets, calibration failures).
    fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError>;

    /// Nominal simulated time per symbol (from calibration, or a static
    /// estimate before calibration has run).
    fn nominal_symbol_time(&self) -> Time;

    /// Self-description for reports and sweep rows.
    fn diagnostics(&self) -> ChannelDiagnostics;
}

/// Quantifies how often two free-running attacker loops slip out of step.
///
/// The per-set slip probability grows with the relative mismatch of the
/// sender's and receiver's phase durations (the effect GPU thread-level
/// parallelism suppresses); on top of that, every phase observed through the
/// custom GPU timer carries a common-mode corruption probability (the timer's
/// rate wobble affects all redundant sets of that phase at once, which is why
/// the paper sees a higher, redundancy-resistant error on the CPU→GPU
/// channel).
#[derive(Debug, Clone, Copy)]
pub struct DesyncModel {
    /// Scale factor applied to the relative phase-duration mismatch.
    pub mismatch_weight: f64,
    /// Common-mode corruption probability per GPU-timed phase.
    pub timer_corruption: f64,
    /// Irreducible per-bit slip probability (scheduling, interrupts).
    pub floor: f64,
}

impl DesyncModel {
    /// Calibration used throughout the reproduction.
    pub fn paper_default() -> Self {
        DesyncModel {
            mismatch_weight: 0.09,
            timer_corruption: 0.018,
            floor: 0.006,
        }
    }

    /// A model with every slip source disabled (deterministic tests).
    pub fn disabled() -> Self {
        DesyncModel {
            mismatch_weight: 0.0,
            timer_corruption: 0.0,
            floor: 0.0,
        }
    }

    /// Per-set slip probability for a phase whose two sides took
    /// `sender_time` and `receiver_time`.
    pub fn per_set_probability(&self, sender_time: Time, receiver_time: Time) -> f64 {
        let a = sender_time.as_ps() as f64;
        let b = receiver_time.as_ps() as f64;
        if a <= 0.0 || b <= 0.0 {
            return 0.0;
        }
        let mismatch = (a - b).abs() / a.max(b);
        (self.mismatch_weight * mismatch).clamp(0.0, 0.5)
    }

    /// Applies the model to one phase's probe observations: independent
    /// per-set slips scaled by the phase-duration mismatch, plus the
    /// common-mode timer corruption when the phase was observed through the
    /// custom GPU timer. Corrupted observations are replaced with uniform
    /// garbage over `ways` ways.
    pub fn corrupt_observations(
        &self,
        rng: &mut SmallRng,
        observations: &mut [ProbeObservation],
        sender_time: Time,
        receiver_time: Time,
        gpu_timed_phase: bool,
        ways: usize,
    ) {
        let per_set = self.per_set_probability(sender_time, receiver_time);
        for obs in observations.iter_mut() {
            if rng.gen_bool(per_set) {
                *obs = ProbeObservation::new(rng.gen_range(0..=ways), ways);
            }
        }
        if gpu_timed_phase && rng.gen_bool(self.timer_corruption) {
            // Common-mode timer wobble: all sets of the phase are affected.
            for obs in observations.iter_mut() {
                *obs = ProbeObservation::new(rng.gen_range(0..=ways), ways);
            }
        }
    }
}

impl Default for DesyncModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the [`Transceiver`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransceiverConfig {
    /// Whether payloads are wrapped in preamble-framed chunks. Raw mode moves
    /// the payload as one unframed frame — the paper's evaluation setting,
    /// where sender and receiver share the bit clock by construction.
    pub framed: bool,
    /// Payload bits per frame (framed mode).
    pub frame_payload_bits: usize,
    /// Retransmissions allowed per frame whose sync marker arrives corrupted.
    pub max_retries: usize,
    /// Tolerated corrupted preamble bits before a frame counts as
    /// desynchronized.
    pub max_sync_errors: usize,
    /// Alternating warm-up symbols moved (untimed) before the payload.
    pub warmup_symbols: usize,
}

impl TransceiverConfig {
    /// Framed operation with the defaults the reproduction uses: 64-bit
    /// frames, up to 2 retransmissions, 2 tolerated sync-bit errors.
    pub fn paper_default() -> Self {
        TransceiverConfig {
            framed: true,
            frame_payload_bits: 64,
            max_retries: 2,
            max_sync_errors: 2,
            warmup_symbols: 2,
        }
    }

    /// Raw pass-through: exactly the per-figure evaluation loop the channels
    /// originally implemented themselves (no preamble, no retries).
    pub fn raw() -> Self {
        TransceiverConfig {
            framed: false,
            frame_payload_bits: usize::MAX,
            max_retries: 0,
            max_sync_errors: 0,
            warmup_symbols: 0,
        }
    }
}

impl Default for TransceiverConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Link-level statistics of one engine transmission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames moved, including retransmissions.
    pub frames_sent: usize,
    /// Frames whose sync marker arrived corrupted beyond tolerance.
    pub sync_failures: usize,
    /// Retransmissions performed.
    pub retransmissions: usize,
}

/// The shared transceiver engine: drives any [`CovertChannel`] end to end.
#[derive(Debug, Clone, Default)]
pub struct Transceiver {
    config: TransceiverConfig,
}

impl Transceiver {
    /// Engine with an explicit configuration.
    pub fn new(config: TransceiverConfig) -> Self {
        Transceiver { config }
    }

    /// Engine in framed mode with the reproduction defaults.
    pub fn paper_default() -> Self {
        Transceiver::new(TransceiverConfig::paper_default())
    }

    /// Engine in raw pass-through mode.
    pub fn raw() -> Self {
        Transceiver::new(TransceiverConfig::raw())
    }

    /// The engine configuration.
    pub fn config(&self) -> &TransceiverConfig {
        &self.config
    }

    /// Moves `payload` over `channel` and assembles the report.
    ///
    /// # Errors
    ///
    /// Propagates calibration and protocol errors from the channel, and
    /// reports [`ChannelError::ReportShape`] if the channel mis-sizes a
    /// frame.
    pub fn transmit<C: CovertChannel + ?Sized>(
        &self,
        channel: &mut C,
        payload: &[bool],
    ) -> Result<TransmissionReport, ChannelError> {
        self.transmit_detailed(channel, payload)
            .map(|(report, _)| report)
    }

    /// Like [`Transceiver::transmit`], additionally returning link-level
    /// statistics (frames, sync failures, retransmissions).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Transceiver::transmit`].
    pub fn transmit_detailed<C: CovertChannel + ?Sized>(
        &self,
        channel: &mut C,
        payload: &[bool],
    ) -> Result<(TransmissionReport, LinkStats), ChannelError> {
        channel.calibrate()?;
        if self.config.warmup_symbols > 0 {
            let warmup: Vec<bool> = (0..self.config.warmup_symbols)
                .map(|i| i % 2 == 0)
                .collect();
            channel.transmit_frame(&warmup)?;
        }

        let mut stats = LinkStats::default();
        let mut received = Vec::with_capacity(payload.len());
        let mut elapsed = Time::ZERO;

        if !self.config.framed {
            let frame = self.send_checked(channel, payload, &mut stats)?;
            elapsed += frame.elapsed;
            received = frame.received;
        } else {
            for chunk in payload.chunks(self.config.frame_payload_bits.max(1)) {
                let wire = frame_bits(chunk);
                let mut attempts = 0usize;
                loop {
                    let frame = self.send_checked(channel, &wire, &mut stats)?;
                    elapsed += frame.elapsed;
                    match deframe_bits(&frame.received, self.config.max_sync_errors) {
                        Ok(body) => {
                            received.extend(body);
                            break;
                        }
                        Err(_) => {
                            stats.sync_failures += 1;
                            if attempts < self.config.max_retries {
                                attempts += 1;
                                stats.retransmissions += 1;
                            } else {
                                // Out of retries: accept the frame body as
                                // decoded; the bit errors show up in the
                                // report rather than being silently dropped.
                                received.extend(&frame.received[FRAME_PREAMBLE.len()..]);
                                break;
                            }
                        }
                    }
                }
            }
        }

        let report = TransmissionReport::try_new(payload.to_vec(), received, elapsed)?;
        Ok((report, stats))
    }

    /// Transmits one frame and checks the shape invariant.
    fn send_checked<C: CovertChannel + ?Sized>(
        &self,
        channel: &mut C,
        wire: &[bool],
        stats: &mut LinkStats,
    ) -> Result<FrameResult, ChannelError> {
        let frame = channel.transmit_frame(wire)?;
        stats.frames_sent += 1;
        if frame.received.len() != wire.len() {
            return Err(ChannelError::ReportShape {
                sent: wire.len(),
                received: frame.received.len(),
            });
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::sync_errors;

    /// A synthetic loopback channel with a configurable per-bit error and a
    /// deterministic seed, for engine-level tests without a simulator.
    struct LoopbackChannel {
        flip_every: usize,
        sent_bits: usize,
        calibrated: bool,
    }

    impl LoopbackChannel {
        fn perfect() -> Self {
            LoopbackChannel {
                flip_every: usize::MAX,
                sent_bits: 0,
                calibrated: false,
            }
        }

        fn with_flip_every(flip_every: usize) -> Self {
            LoopbackChannel {
                flip_every,
                sent_bits: 0,
                calibrated: false,
            }
        }
    }

    impl CovertChannel for LoopbackChannel {
        fn calibrate(&mut self) -> Result<Calibration, ChannelError> {
            self.calibrated = true;
            Ok(Calibration {
                symbol_time: Time::from_us(1),
                quality: 10.0,
                detail: "loopback".into(),
            })
        }

        fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError> {
            assert!(self.calibrated, "engine must calibrate before transmitting");
            let received = bits
                .iter()
                .map(|&b| {
                    self.sent_bits += 1;
                    if self.flip_every != usize::MAX
                        && self.sent_bits.is_multiple_of(self.flip_every)
                    {
                        !b
                    } else {
                        b
                    }
                })
                .collect();
            Ok(FrameResult {
                received,
                elapsed: Time::from_us(bits.len() as u64),
            })
        }

        fn nominal_symbol_time(&self) -> Time {
            Time::from_us(1)
        }

        fn diagnostics(&self) -> ChannelDiagnostics {
            ChannelDiagnostics {
                channel: "loopback",
                backend: "none".into(),
                entries: vec![("flip_every", self.flip_every as f64)],
            }
        }
    }

    #[test]
    fn raw_mode_moves_payload_verbatim() {
        let mut channel = LoopbackChannel::perfect();
        let payload: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let (report, stats) = Transceiver::raw()
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.bit_count(), 100);
        assert_eq!(stats.frames_sent, 1);
        assert_eq!(stats.retransmissions, 0);
    }

    #[test]
    fn framed_mode_roundtrips_and_counts_frames() {
        let mut channel = LoopbackChannel::perfect();
        let payload: Vec<bool> = (0..130).map(|i| i % 5 == 0).collect();
        let (report, stats) = Transceiver::paper_default()
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.bit_count(), 130);
        // 130 bits at 64 per frame -> 3 frames; the warm-up symbols are sent
        // outside the frame accounting.
        assert_eq!(stats.frames_sent, 3);
        assert_eq!(stats.sync_failures, 0);
    }

    #[test]
    fn corrupted_sync_triggers_bounded_retransmission() {
        // Flip every 2nd bit: every preamble arrives with 4 errors out of 8 —
        // beyond the 2-error tolerance — so every frame fails sync and burns
        // its retries before being accepted best-effort.
        let mut channel = LoopbackChannel::with_flip_every(2);
        let payload: Vec<bool> = vec![true; 32];
        let config = TransceiverConfig {
            frame_payload_bits: 32,
            max_retries: 2,
            warmup_symbols: 0,
            ..TransceiverConfig::paper_default()
        };
        let (report, stats) = Transceiver::new(config)
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(report.bit_count(), 32);
        assert!(stats.sync_failures >= 1);
        assert_eq!(
            stats.retransmissions, 2,
            "retries are bounded by max_retries"
        );
        assert_eq!(stats.frames_sent, 3, "1 original + 2 retransmissions");
        assert!(
            report.error_count() > 0,
            "best-effort frame keeps its bit errors"
        );
    }

    #[test]
    fn shape_violations_surface_as_errors() {
        struct TruncatingChannel;
        impl CovertChannel for TruncatingChannel {
            fn calibrate(&mut self) -> Result<Calibration, ChannelError> {
                Ok(Calibration {
                    symbol_time: Time::from_us(1),
                    quality: 2.0,
                    detail: String::new(),
                })
            }
            fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError> {
                Ok(FrameResult {
                    received: bits[..bits.len() / 2].to_vec(),
                    elapsed: Time::from_us(1),
                })
            }
            fn nominal_symbol_time(&self) -> Time {
                Time::from_us(1)
            }
            fn diagnostics(&self) -> ChannelDiagnostics {
                ChannelDiagnostics {
                    channel: "truncating",
                    backend: String::new(),
                    entries: vec![],
                }
            }
        }
        let err = Transceiver::raw()
            .transmit(&mut TruncatingChannel, &[true; 10])
            .unwrap_err();
        assert!(matches!(
            err,
            ChannelError::ReportShape {
                sent: 10,
                received: 5
            }
        ));
    }

    #[test]
    fn preamble_detects_heavy_corruption_but_tolerates_light() {
        let wire = frame_bits(&[true, false]);
        assert_eq!(sync_errors(&wire), 0);
        let mut one_flip = wire.clone();
        one_flip[0] = !one_flip[0];
        assert_eq!(sync_errors(&one_flip), 1);
        assert!(deframe_bits(&one_flip, 2).is_ok());
        let mut heavy = wire;
        for bit in heavy.iter_mut().take(5) {
            *bit = !*bit;
        }
        assert!(deframe_bits(&heavy, 2).is_err());
    }

    #[test]
    fn calibration_usability_reflects_quality_and_symbol_time() {
        let good = Calibration {
            symbol_time: Time::from_us(3),
            quality: 4.0,
            detail: String::new(),
        };
        assert!(good.is_usable());
        let overlapping = Calibration {
            quality: 0.8,
            ..good.clone()
        };
        assert!(!overlapping.is_usable());
        let degenerate = Calibration {
            symbol_time: Time::ZERO,
            ..good
        };
        assert!(!degenerate.is_usable());
    }

    #[test]
    fn desync_model_probabilities_are_bounded() {
        let model = DesyncModel::paper_default();
        let p = model.per_set_probability(Time::from_us(10), Time::from_us(13));
        assert!(p > 0.0 && p <= 0.5);
        assert_eq!(model.per_set_probability(Time::ZERO, Time::from_us(1)), 0.0);
        let disabled = DesyncModel::disabled();
        assert_eq!(
            disabled.per_set_probability(Time::from_us(1), Time::from_us(9)),
            0.0
        );
    }
}
