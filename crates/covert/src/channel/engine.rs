//! The unified channel abstraction and the shared transceiver engine.
//!
//! The paper evaluates two covert channels with very different physical
//! mechanisms — Prime+Probe over shared LLC sets (Section III) and timing
//! contention on the ring/LLC ports (Section IV) — but an identical outer
//! loop: calibrate, move a bit string one symbol at a time, classify what the
//! receiver saw, and report (bandwidth, error rate). This module factors that
//! outer loop out of the channels:
//!
//! * [`CovertChannel`] is the narrow surface a channel implements — move one
//!   *frame* of raw bits ([`CovertChannel::transmit_frame`]) and describe
//!   itself ([`CovertChannel::calibrate`], diagnostics, nominal symbol time).
//! * [`Transceiver`] owns everything above the symbol level: warm-up,
//!   splitting payloads into frames, the [`crate::protocol::FRAME_PREAMBLE`]
//!   sync marker, bounded retransmission of desynchronized frames, and
//!   [`TransmissionReport`] assembly through the non-aborting constructors.
//! * [`DesyncModel`] — the clock-disparity slip model both GPU-paced channels
//!   share — lives here so any backend/channel pair can reuse it.
//!
//! Channels are generic over [`soc_sim::backend::MemorySystem`], so the same
//! engine drives a channel against the paper's Kaby Lake + Gen9 model, the
//! partitioned-LLC mitigation, a Gen11-class topology, or any future backend.

use crate::code::LinkCodeKind;
use crate::error::ChannelError;
use crate::metrics::{CodingSummary, TransmissionReport};
use crate::protocol::{deframe_bits, frame_bits, ProbeObservation, FRAME_PREAMBLE};
use rand::rngs::SmallRng;
use rand::Rng;
use soc_sim::clock::Time;
use soc_sim::events::{EventLayer, EventSink};
use soc_sim::prelude::MemorySystem;
use soc_sim::telemetry::{Counter, Histogram, Registry, Span};

/// One-line description of a backend's LLC geometry, shared by every
/// channel's [`ChannelDiagnostics`].
pub fn backend_summary<M: MemorySystem>(soc: &M) -> String {
    let llc = soc.llc().config();
    format!(
        "LLC {} MB / {} slices x {} ways{}",
        llc.capacity_bytes() / (1024 * 1024),
        llc.slices(),
        llc.ways,
        if soc.config().llc_partition.is_some() {
            ", way-partitioned"
        } else {
            ""
        }
    )
}

/// Channel-agnostic summary of a completed calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Nominal simulated time to move one symbol (one protocol round).
    pub symbol_time: Time,
    /// Separation quality of the channel's decision statistic: the ratio of
    /// the two symbol populations' distance to their spread. Greater than 1
    /// means the calibration found a usable channel.
    pub quality: f64,
    /// Human-readable calibration summary for reports.
    pub detail: String,
}

impl Calibration {
    /// Whether the calibration found a usable channel.
    pub fn is_usable(&self) -> bool {
        self.quality > 1.0 && self.symbol_time > Time::ZERO
    }
}

/// The receiver-side outcome of one transmitted frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameResult {
    /// Bits the receiver decoded, in order.
    pub received: Vec<bool>,
    /// Simulated time the frame took end to end.
    pub elapsed: Time,
}

/// Key/value diagnostics a channel exposes for reports and sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelDiagnostics {
    /// Channel family label (e.g. `"llc-prime-probe"`).
    pub channel: &'static str,
    /// Description of the backend the channel runs against.
    pub backend: String,
    /// Named scalar diagnostics (thresholds, redundancy, noise levels, …).
    pub entries: Vec<(&'static str, f64)>,
}

impl ChannelDiagnostics {
    /// Looks up a named diagnostic.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// A covert channel, reduced to the surface the [`Transceiver`] needs.
///
/// Implementations move raw bits; framing, retries and reporting belong to
/// the engine. `transmit_frame` must return exactly one received bit per
/// input bit — the engine checks and surfaces a
/// [`ChannelError::ReportShape`] otherwise.
pub trait CovertChannel {
    /// Calibrates the channel (idempotent: later calls return the cached
    /// result) and reports the calibration summary.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] when the channel cannot be made usable
    /// (e.g. the custom timer cannot separate the cache levels).
    fn calibrate(&mut self) -> Result<Calibration, ChannelError>;

    /// Moves one frame of raw bits, returning the receiver's view.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] on protocol-level failures (empty
    /// observation sets, calibration failures).
    fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError>;

    /// Nominal simulated time per symbol (from calibration, or a static
    /// estimate before calibration has run).
    fn nominal_symbol_time(&self) -> Time;

    /// Advances the channel's local simulated clocks by `delta` without
    /// performing any accesses: the shared medium was granted to someone
    /// else (a TDD peer's slot) and this channel sat out the airtime. For
    /// channels whose ambient noise follows a wall-clock schedule this is
    /// what makes the weather *shared* — a deferred transmission meets the
    /// phase the schedule has moved on to, not the one it left. The
    /// default is a no-op for channels with no meaningful idle notion
    /// (loopbacks, replays).
    fn advance_idle(&mut self, _delta: Time) {}

    /// Self-description for reports and sweep rows.
    fn diagnostics(&self) -> ChannelDiagnostics;
}

/// Quantifies how often two free-running attacker loops slip out of step.
///
/// The per-set slip probability grows with the relative mismatch of the
/// sender's and receiver's phase durations (the effect GPU thread-level
/// parallelism suppresses); on top of that, every phase observed through the
/// custom GPU timer carries a common-mode corruption probability (the timer's
/// rate wobble affects all redundant sets of that phase at once, which is why
/// the paper sees a higher, redundancy-resistant error on the CPU→GPU
/// channel).
#[derive(Debug, Clone, Copy)]
pub struct DesyncModel {
    /// Scale factor applied to the relative phase-duration mismatch.
    pub mismatch_weight: f64,
    /// Common-mode corruption probability per GPU-timed phase.
    pub timer_corruption: f64,
    /// Irreducible per-bit slip probability (scheduling, interrupts).
    pub floor: f64,
}

impl DesyncModel {
    /// Calibration used throughout the reproduction.
    pub fn paper_default() -> Self {
        DesyncModel {
            mismatch_weight: 0.09,
            timer_corruption: 0.018,
            floor: 0.006,
        }
    }

    /// A model with every slip source disabled (deterministic tests).
    pub fn disabled() -> Self {
        DesyncModel {
            mismatch_weight: 0.0,
            timer_corruption: 0.0,
            floor: 0.0,
        }
    }

    /// Per-set slip probability for a phase whose two sides took
    /// `sender_time` and `receiver_time`.
    pub fn per_set_probability(&self, sender_time: Time, receiver_time: Time) -> f64 {
        let a = sender_time.as_ps() as f64;
        let b = receiver_time.as_ps() as f64;
        if a <= 0.0 || b <= 0.0 {
            return 0.0;
        }
        let mismatch = (a - b).abs() / a.max(b);
        (self.mismatch_weight * mismatch).clamp(0.0, 0.5)
    }

    /// Applies the model to one phase's probe observations: independent
    /// per-set slips scaled by the phase-duration mismatch, plus the
    /// common-mode timer corruption when the phase was observed through the
    /// custom GPU timer. Corrupted observations are replaced with uniform
    /// garbage over `ways` ways.
    pub fn corrupt_observations(
        &self,
        rng: &mut SmallRng,
        observations: &mut [ProbeObservation],
        sender_time: Time,
        receiver_time: Time,
        gpu_timed_phase: bool,
        ways: usize,
    ) {
        let per_set = self.per_set_probability(sender_time, receiver_time);
        for obs in observations.iter_mut() {
            if rng.gen_bool(per_set) {
                *obs = ProbeObservation::new(rng.gen_range(0..=ways), ways);
            }
        }
        if gpu_timed_phase && rng.gen_bool(self.timer_corruption) {
            // Common-mode timer wobble: all sets of the phase are affected.
            for obs in observations.iter_mut() {
                *obs = ProbeObservation::new(rng.gen_range(0..=ways), ways);
            }
        }
    }
}

impl Default for DesyncModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the [`Transceiver`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransceiverConfig {
    /// Whether payloads are wrapped in preamble-framed chunks. Raw mode moves
    /// the payload as one unframed frame — the paper's evaluation setting,
    /// where sender and receiver share the bit clock by construction.
    pub framed: bool,
    /// Payload bits per frame (framed mode).
    pub frame_payload_bits: usize,
    /// Retransmissions allowed per frame whose sync marker arrives corrupted
    /// or whose link-code decode reports uncorrectable residual errors.
    pub max_retries: usize,
    /// Tolerated corrupted preamble bits before a frame counts as
    /// desynchronized.
    pub max_sync_errors: usize,
    /// Alternating warm-up symbols moved (untimed) before the payload.
    pub warmup_symbols: usize,
    /// Link code applied to every frame payload before symbol modulation
    /// (and stripped after demodulation, before the accept path).
    pub code: LinkCodeKind,
    /// Times each wire symbol is repeated on the channel (majority-voted on
    /// receive). `1` is plain modulation; larger values stretch the
    /// effective symbol time by the same factor, trading bandwidth for
    /// robustness — the *rate* knob of the adaptation layer
    /// ([`crate::adapt`]). Values are clamped to at least 1.
    pub symbol_repeat: usize,
}

impl TransceiverConfig {
    /// Framed operation with the defaults the reproduction uses: 64-bit
    /// frames, up to 2 retransmissions, 2 tolerated sync-bit errors, no
    /// link code.
    pub fn paper_default() -> Self {
        TransceiverConfig {
            framed: true,
            frame_payload_bits: 64,
            max_retries: 2,
            max_sync_errors: 2,
            warmup_symbols: 2,
            code: LinkCodeKind::None,
            symbol_repeat: 1,
        }
    }

    /// Raw pass-through: exactly the per-figure evaluation loop the channels
    /// originally implemented themselves (no preamble, no retries).
    pub fn raw() -> Self {
        TransceiverConfig {
            framed: false,
            frame_payload_bits: usize::MAX,
            max_retries: 0,
            max_sync_errors: 0,
            warmup_symbols: 0,
            code: LinkCodeKind::None,
            symbol_repeat: 1,
        }
    }

    /// Replaces the link code.
    pub fn with_code(mut self, code: LinkCodeKind) -> Self {
        self.code = code;
        self
    }

    /// Replaces the symbol-repeat factor (clamped to at least 1 — the
    /// engine never runs at zero rate).
    pub fn with_symbol_repeat(mut self, repeat: usize) -> Self {
        self.symbol_repeat = repeat.max(1);
        self
    }

    /// The effective symbol-repeat factor (the configured value, clamped).
    pub fn effective_symbol_repeat(&self) -> usize {
        self.symbol_repeat.max(1)
    }
}

impl Default for TransceiverConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Link-level statistics of one engine transmission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames moved, including retransmissions.
    pub frames_sent: usize,
    /// Frames whose sync marker arrived corrupted beyond tolerance.
    pub sync_failures: usize,
    /// Retransmissions performed.
    pub retransmissions: usize,
    /// Frame decodes that reported uncorrectable residual errors.
    pub decode_failures: usize,
    /// Bits the link-code decoder repaired across all frames.
    pub corrected_bits: usize,
}

/// Cached telemetry handles the engine updates alongside [`LinkStats`]
/// (`link.*` counters) and the wall-clock phase histograms the sweep
/// profiler reads (`phase.simulate_ns`, `phase.classify_ns`).
#[derive(Debug, Clone)]
struct LinkTelemetry {
    frames_sent: Counter,
    sync_failures: Counter,
    retransmissions: Counter,
    decode_failures: Counter,
    corrected_bits: Counter,
    simulate_ns: Histogram,
    classify_ns: Histogram,
}

impl LinkTelemetry {
    fn new(registry: &Registry) -> Self {
        LinkTelemetry {
            frames_sent: registry.counter("link.frames_sent"),
            sync_failures: registry.counter("link.sync_failures"),
            retransmissions: registry.counter("link.retransmissions"),
            decode_failures: registry.counter("link.decode_failures"),
            corrected_bits: registry.counter("link.corrected_bits"),
            simulate_ns: registry.histogram("phase.simulate_ns"),
            classify_ns: registry.histogram("phase.classify_ns"),
        }
    }
}

/// The shared transceiver engine: drives any [`CovertChannel`] end to end.
#[derive(Debug, Clone, Default)]
pub struct Transceiver {
    config: TransceiverConfig,
    telemetry: Option<LinkTelemetry>,
    events: Option<EventSink>,
    /// Simulated-time origin of this transmission on the timeline (the
    /// engine itself always counts from zero; an outer loop that drives
    /// several transmissions back to back — the adaptive transceiver's
    /// windows — sets the running offset so the `link` track stays on one
    /// continuous clock).
    event_base: Time,
}

impl Transceiver {
    /// Engine with an explicit configuration.
    pub fn new(config: TransceiverConfig) -> Self {
        Transceiver {
            config,
            telemetry: None,
            events: None,
            event_base: Time::ZERO,
        }
    }

    /// Attaches the engine to a telemetry registry: link-level events feed
    /// the `link.*` counters (mirroring the [`LinkStats`] it returns) and
    /// the per-frame channel-simulation / classify-decode wall-clock times
    /// feed the `phase.simulate_ns` / `phase.classify_ns` histograms.
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.telemetry = Some(LinkTelemetry::new(registry));
        self
    }

    /// Attaches the engine to a timeline sink (see [`soc_sim::events`]):
    /// every frame attempt becomes a `link`-track duration event stamped
    /// with the transmission's running simulated time, and sync failures,
    /// retransmissions and decode failures become instants at the moment
    /// they were detected. Purely observational.
    #[must_use]
    pub fn with_events(mut self, sink: &EventSink) -> Self {
        self.events = Some(sink.clone());
        self
    }

    /// Sets the simulated-time origin timeline events are stamped against
    /// (see the `event_base` field).
    #[must_use]
    pub fn with_event_base(mut self, base: Time) -> Self {
        self.event_base = base;
        self
    }

    fn simulate_span(&self) -> Span {
        self.telemetry
            .as_ref()
            .map_or_else(Span::noop, |t| t.simulate_ns.span())
    }

    fn classify_span(&self) -> Span {
        self.telemetry
            .as_ref()
            .map_or_else(Span::noop, |t| t.classify_ns.span())
    }

    /// Engine in framed mode with the reproduction defaults.
    pub fn paper_default() -> Self {
        Transceiver::new(TransceiverConfig::paper_default())
    }

    /// Engine in raw pass-through mode.
    pub fn raw() -> Self {
        Transceiver::new(TransceiverConfig::raw())
    }

    /// The engine configuration.
    pub fn config(&self) -> &TransceiverConfig {
        &self.config
    }

    /// Moves `payload` over `channel` and assembles the report.
    ///
    /// # Errors
    ///
    /// Propagates calibration and protocol errors from the channel, and
    /// reports [`ChannelError::ReportShape`] if the channel mis-sizes a
    /// frame.
    pub fn transmit<C: CovertChannel + ?Sized>(
        &self,
        channel: &mut C,
        payload: &[bool],
    ) -> Result<TransmissionReport, ChannelError> {
        self.transmit_detailed(channel, payload)
            .map(|(report, _)| report)
    }

    /// Like [`Transceiver::transmit`], additionally returning link-level
    /// statistics (frames, sync failures, retransmissions).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Transceiver::transmit`].
    pub fn transmit_detailed<C: CovertChannel + ?Sized>(
        &self,
        channel: &mut C,
        payload: &[bool],
    ) -> Result<(TransmissionReport, LinkStats), ChannelError> {
        channel.calibrate()?;
        if self.config.warmup_symbols > 0 {
            let warmup: Vec<bool> = (0..self.config.warmup_symbols)
                .map(|i| i % 2 == 0)
                .collect();
            channel.transmit_frame(&warmup)?;
        }

        let codec = self.config.code.build();
        let mut stats = LinkStats::default();
        let mut residual_errors = 0usize;
        let mut wire_bits = 0usize;
        let mut received = Vec::with_capacity(payload.len());
        let mut elapsed = Time::ZERO;

        // Timeline recording gates on the sink once per transmission; the
        // hot loops below then pay one `Option` check per would-be event.
        let events = self.events.as_ref().filter(|sink| sink.is_enabled());

        if !self.config.framed {
            // Unframed mode still applies the link code: the whole payload
            // travels as one preamble-less coded frame.
            let wire = codec.encode(payload);
            let frame = self.send_checked(channel, &wire, &mut stats)?;
            elapsed += frame.elapsed;
            wire_bits += wire.len() * self.config.effective_symbol_repeat();
            let _classify = self.classify_span();
            let outcome = codec.decode(&frame.received);
            stats.corrected_bits += outcome.corrected_bits;
            if outcome.residual_errors > 0 {
                stats.decode_failures += 1;
                residual_errors += outcome.residual_errors;
            }
            if let Some(sink) = events {
                sink.span(
                    EventLayer::Link,
                    "raw_block",
                    self.event_base,
                    frame.elapsed,
                    vec![
                        ("wire_bits", wire_bits.into()),
                        (
                            "outcome",
                            if outcome.residual_errors > 0 {
                                "decode_failure"
                            } else {
                                "delivered"
                            }
                            .into(),
                        ),
                    ],
                );
            }
            received = outcome.payload;
            received.resize(payload.len(), false);
        } else {
            for (frame_index, chunk) in payload
                .chunks(self.config.frame_payload_bits.max(1))
                .enumerate()
            {
                let coded = codec.encode(chunk);
                let wire = frame_bits(&coded);
                let mut attempts = 0usize;
                loop {
                    let start = self.event_base + elapsed;
                    let frame = self.send_checked(channel, &wire, &mut stats)?;
                    elapsed += frame.elapsed;
                    let now = self.event_base + elapsed;
                    wire_bits += wire.len() * self.config.effective_symbol_repeat();
                    // One duration event per frame attempt, stamped with the
                    // attempt's terminal verdict.
                    let frame_event = |verdict: &'static str, attempt: usize| {
                        if let Some(sink) = events {
                            sink.span(
                                EventLayer::Link,
                                "frame",
                                start,
                                frame.elapsed,
                                vec![
                                    ("frame", frame_index.into()),
                                    ("attempt", attempt.into()),
                                    ("outcome", verdict.into()),
                                ],
                            );
                        }
                    };
                    let retransmit_event = |attempt: usize| {
                        if let Some(sink) = events {
                            sink.instant(
                                EventLayer::Link,
                                "retransmission",
                                now,
                                vec![("frame", frame_index.into()), ("attempt", attempt.into())],
                            );
                        }
                    };
                    let _classify = self.classify_span();
                    let out_of_retries = attempts >= self.config.max_retries;
                    let body = match deframe_bits(&frame.received, self.config.max_sync_errors) {
                        Ok(body) => body,
                        Err(_) => {
                            stats.sync_failures += 1;
                            if let Some(sink) = events {
                                sink.instant(
                                    EventLayer::Link,
                                    "sync_failure",
                                    now,
                                    vec![("frame", frame_index.into())],
                                );
                            }
                            if !out_of_retries {
                                frame_event("sync_failure", attempts);
                                attempts += 1;
                                stats.retransmissions += 1;
                                retransmit_event(attempts);
                                continue;
                            }
                            // Out of retries: decode the body best-effort;
                            // the bit errors show up in the report rather
                            // than being silently dropped.
                            frame.received[FRAME_PREAMBLE.len()..].to_vec()
                        }
                    };
                    let mut outcome = codec.decode(&body);
                    if outcome.residual_errors > 0 {
                        stats.decode_failures += 1;
                        if let Some(sink) = events {
                            sink.instant(
                                EventLayer::Link,
                                "decode_failure",
                                now,
                                vec![
                                    ("frame", frame_index.into()),
                                    ("residual_errors", outcome.residual_errors.into()),
                                ],
                            );
                        }
                        // The decoder detected damage it cannot repair:
                        // retransmission is the only remaining recovery.
                        // Repairs made to this discarded attempt do not
                        // count — only accepted frames contribute to
                        // `corrected_bits`.
                        if !out_of_retries {
                            frame_event("decode_failure", attempts);
                            attempts += 1;
                            stats.retransmissions += 1;
                            retransmit_event(attempts);
                            continue;
                        }
                        residual_errors += outcome.residual_errors;
                    }
                    stats.corrected_bits += outcome.corrected_bits;
                    outcome.payload.resize(chunk.len(), false);
                    received.extend(outcome.payload);
                    frame_event("delivered", attempts);
                    break;
                }
            }
        }

        if let Some(telemetry) = &self.telemetry {
            // Mirror the per-transmission stats into the shared registry so
            // sweep-level snapshots see the same causes `LinkStats` reports.
            telemetry.frames_sent.add(stats.frames_sent as u64);
            telemetry.sync_failures.add(stats.sync_failures as u64);
            telemetry.retransmissions.add(stats.retransmissions as u64);
            telemetry.decode_failures.add(stats.decode_failures as u64);
            telemetry.corrected_bits.add(stats.corrected_bits as u64);
        }

        let coding = CodingSummary {
            code: self.config.code,
            code_rate: codec.rate(),
            frame_payload_bits: self.config.frame_payload_bits.min(payload.len().max(1)),
            wire_bits,
            corrected_bits: stats.corrected_bits,
            residual_errors,
        };
        let report =
            TransmissionReport::try_new(payload.to_vec(), received, elapsed)?.with_coding(coding);
        Ok((report, stats))
    }

    /// Transmits one frame and checks the shape invariant. With a
    /// `symbol_repeat` above 1, each wire symbol is modulated `repeat` times
    /// back to back and the received copies are majority-voted back into one
    /// bit — the channel sees (and pays the airtime of) the expanded frame.
    fn send_checked<C: CovertChannel + ?Sized>(
        &self,
        channel: &mut C,
        wire: &[bool],
        stats: &mut LinkStats,
    ) -> Result<FrameResult, ChannelError> {
        let repeat = self.config.effective_symbol_repeat();
        if repeat == 1 {
            let frame = {
                let _simulate = self.simulate_span();
                channel.transmit_frame(wire)?
            };
            stats.frames_sent += 1;
            if frame.received.len() != wire.len() {
                return Err(ChannelError::ReportShape {
                    sent: wire.len(),
                    received: frame.received.len(),
                });
            }
            return Ok(frame);
        }
        let expanded: Vec<bool> = wire
            .iter()
            .flat_map(|&bit| std::iter::repeat_n(bit, repeat))
            .collect();
        let frame = {
            let _simulate = self.simulate_span();
            channel.transmit_frame(&expanded)?
        };
        stats.frames_sent += 1;
        if frame.received.len() != expanded.len() {
            return Err(ChannelError::ReportShape {
                sent: expanded.len(),
                received: frame.received.len(),
            });
        }
        let received = frame
            .received
            .chunks(repeat)
            .map(|copies| {
                let ones = copies.iter().filter(|&&b| b).count();
                match (ones * 2).cmp(&copies.len()) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Less => false,
                    // Even repeat counts can tie; the first copy breaks it.
                    std::cmp::Ordering::Equal => copies[0],
                }
            })
            .collect();
        Ok(FrameResult {
            received,
            elapsed: frame.elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::sync_errors;

    /// A synthetic loopback channel with a configurable per-bit error and a
    /// deterministic seed, for engine-level tests without a simulator.
    struct LoopbackChannel {
        flip_every: usize,
        sent_bits: usize,
        calibrated: bool,
    }

    impl LoopbackChannel {
        fn perfect() -> Self {
            LoopbackChannel {
                flip_every: usize::MAX,
                sent_bits: 0,
                calibrated: false,
            }
        }

        fn with_flip_every(flip_every: usize) -> Self {
            LoopbackChannel {
                flip_every,
                sent_bits: 0,
                calibrated: false,
            }
        }
    }

    impl CovertChannel for LoopbackChannel {
        fn calibrate(&mut self) -> Result<Calibration, ChannelError> {
            self.calibrated = true;
            Ok(Calibration {
                symbol_time: Time::from_us(1),
                quality: 10.0,
                detail: "loopback".into(),
            })
        }

        fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError> {
            assert!(self.calibrated, "engine must calibrate before transmitting");
            let received = bits
                .iter()
                .map(|&b| {
                    self.sent_bits += 1;
                    if self.flip_every != usize::MAX
                        && self.sent_bits.is_multiple_of(self.flip_every)
                    {
                        !b
                    } else {
                        b
                    }
                })
                .collect();
            Ok(FrameResult {
                received,
                elapsed: Time::from_us(bits.len() as u64),
            })
        }

        fn nominal_symbol_time(&self) -> Time {
            Time::from_us(1)
        }

        fn diagnostics(&self) -> ChannelDiagnostics {
            ChannelDiagnostics {
                channel: "loopback",
                backend: "none".into(),
                entries: vec![("flip_every", self.flip_every as f64)],
            }
        }
    }

    #[test]
    fn raw_mode_moves_payload_verbatim() {
        let mut channel = LoopbackChannel::perfect();
        let payload: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let (report, stats) = Transceiver::raw()
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.bit_count(), 100);
        assert_eq!(stats.frames_sent, 1);
        assert_eq!(stats.retransmissions, 0);
    }

    #[test]
    fn framed_mode_roundtrips_and_counts_frames() {
        let mut channel = LoopbackChannel::perfect();
        let payload: Vec<bool> = (0..130).map(|i| i % 5 == 0).collect();
        let (report, stats) = Transceiver::paper_default()
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.bit_count(), 130);
        // 130 bits at 64 per frame -> 3 frames; the warm-up symbols are sent
        // outside the frame accounting.
        assert_eq!(stats.frames_sent, 3);
        assert_eq!(stats.sync_failures, 0);
    }

    #[test]
    fn corrupted_sync_triggers_bounded_retransmission() {
        // Flip every 2nd bit: every preamble arrives with 4 errors out of 8 —
        // beyond the 2-error tolerance — so every frame fails sync and burns
        // its retries before being accepted best-effort.
        let mut channel = LoopbackChannel::with_flip_every(2);
        let payload: Vec<bool> = vec![true; 32];
        let config = TransceiverConfig {
            frame_payload_bits: 32,
            max_retries: 2,
            warmup_symbols: 0,
            ..TransceiverConfig::paper_default()
        };
        let (report, stats) = Transceiver::new(config)
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(report.bit_count(), 32);
        assert!(stats.sync_failures >= 1);
        assert_eq!(
            stats.retransmissions, 2,
            "retries are bounded by max_retries"
        );
        assert_eq!(stats.frames_sent, 3, "1 original + 2 retransmissions");
        assert!(
            report.error_count() > 0,
            "best-effort frame keeps its bit errors"
        );
    }

    /// Flips one payload-region bit of the first `dirty_frames`
    /// transmissions, then becomes a perfect loopback — the shape of a
    /// transient noise burst that a retransmission recovers from.
    struct FlakyChannel {
        dirty_frames: usize,
        frames_seen: usize,
    }

    impl CovertChannel for FlakyChannel {
        fn calibrate(&mut self) -> Result<Calibration, ChannelError> {
            Ok(Calibration {
                symbol_time: Time::from_us(1),
                quality: 10.0,
                detail: "flaky loopback".into(),
            })
        }

        fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError> {
            self.frames_seen += 1;
            let mut received = bits.to_vec();
            if self.frames_seen <= self.dirty_frames {
                // Flip a bit safely inside the frame body, past the preamble.
                let target = FRAME_PREAMBLE.len() + 2;
                if let Some(bit) = received.get_mut(target) {
                    *bit = !*bit;
                }
            }
            Ok(FrameResult {
                received,
                elapsed: Time::from_us(bits.len() as u64),
            })
        }

        fn nominal_symbol_time(&self) -> Time {
            Time::from_us(1)
        }

        fn diagnostics(&self) -> ChannelDiagnostics {
            ChannelDiagnostics {
                channel: "flaky",
                backend: "none".into(),
                entries: vec![],
            }
        }
    }

    #[test]
    fn crc_code_turns_payload_errors_into_retransmissions() {
        // The first two frame transmissions arrive with a body bit flipped —
        // invisible to the preamble sync check, so the uncoded engine would
        // deliver them dirty. CRC-8 detects both and the retransmissions
        // deliver every frame clean.
        let payload: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let config = TransceiverConfig {
            frame_payload_bits: 32,
            warmup_symbols: 0,
            max_retries: 3,
            code: LinkCodeKind::Crc8,
            ..TransceiverConfig::paper_default()
        };
        let mut channel = FlakyChannel {
            dirty_frames: 2,
            frames_seen: 0,
        };
        let (report, stats) = Transceiver::new(config)
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(stats.decode_failures, 2, "CRC must catch both dirty frames");
        assert_eq!(stats.retransmissions, 2);
        assert_eq!(
            report.error_count(),
            0,
            "retransmission must deliver every frame clean"
        );
        let coding = report.coding.expect("engine attaches coding stats");
        assert_eq!(coding.code, LinkCodeKind::Crc8);
        assert!(coding.code_rate < 1.0);
        assert!(report.goodput_kbps() > 0.0);
    }

    #[test]
    fn uncoded_engine_delivers_the_same_errors_dirty() {
        // Control for the CRC test above: without a link code the flipped
        // body bits sail through the sync check and corrupt the payload.
        let payload: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let config = TransceiverConfig {
            frame_payload_bits: 32,
            warmup_symbols: 0,
            max_retries: 3,
            ..TransceiverConfig::paper_default()
        };
        let mut channel = FlakyChannel {
            dirty_frames: 2,
            frames_seen: 0,
        };
        let (report, stats) = Transceiver::new(config)
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(report.error_count(), 2);
    }

    #[test]
    fn hamming_code_corrects_without_retransmission() {
        // Sparse flips: at most one per 7-bit codeword, all corrected in
        // place — zero retransmissions, zero residual errors.
        let payload: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let config = TransceiverConfig {
            frame_payload_bits: 32,
            warmup_symbols: 0,
            code: LinkCodeKind::Hamming74,
            ..TransceiverConfig::paper_default()
        };
        let mut channel = LoopbackChannel::with_flip_every(17);
        let (report, stats) = Transceiver::new(config)
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(report.error_count(), 0);
        assert_eq!(stats.retransmissions, 0);
        assert!(
            stats.corrected_bits >= 3,
            "flips must be corrected, not absent"
        );
        assert_eq!(report.coding.unwrap().residual_errors, 0);
    }

    #[test]
    fn reed_solomon_survives_noise_in_raw_mode() {
        // 96 payload bits -> two RS(12,8) codewords, 192 wire bits. A flip
        // every 61 bits corrupts three spread-out symbols — within the
        // per-codeword budget of t = 2 — so the decoder repairs everything.
        let payload: Vec<bool> = (0..96).map(|i| i % 5 < 2).collect();
        let config = TransceiverConfig::raw().with_code(LinkCodeKind::rs_default());
        let mut channel = LoopbackChannel::with_flip_every(61);
        let (report, stats) = Transceiver::new(config)
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(report.bit_count(), 96);
        assert_eq!(report.error_count(), 0, "isolated flips are within t");
        assert_eq!(stats.corrected_bits, 3);
    }

    #[test]
    fn uncoded_framed_engine_reports_coding_baseline() {
        let mut channel = LoopbackChannel::perfect();
        let payload: Vec<bool> = (0..100).map(|i| i % 7 == 0).collect();
        let (report, _) = Transceiver::paper_default()
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        let coding = report.coding.expect("baseline still carries a summary");
        assert_eq!(coding.code, LinkCodeKind::None);
        assert_eq!(coding.code_rate, 1.0);
        assert_eq!(coding.corrected_bits, 0);
        // Wire bits = ceil(100/64) frames x (preamble + payload) bits.
        assert_eq!(coding.wire_bits, 64 + 8 + 36 + 8);
    }

    #[test]
    fn shape_violations_surface_as_errors() {
        struct TruncatingChannel;
        impl CovertChannel for TruncatingChannel {
            fn calibrate(&mut self) -> Result<Calibration, ChannelError> {
                Ok(Calibration {
                    symbol_time: Time::from_us(1),
                    quality: 2.0,
                    detail: String::new(),
                })
            }
            fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError> {
                Ok(FrameResult {
                    received: bits[..bits.len() / 2].to_vec(),
                    elapsed: Time::from_us(1),
                })
            }
            fn nominal_symbol_time(&self) -> Time {
                Time::from_us(1)
            }
            fn diagnostics(&self) -> ChannelDiagnostics {
                ChannelDiagnostics {
                    channel: "truncating",
                    backend: String::new(),
                    entries: vec![],
                }
            }
        }
        let err = Transceiver::raw()
            .transmit(&mut TruncatingChannel, &[true; 10])
            .unwrap_err();
        assert!(matches!(
            err,
            ChannelError::ReportShape {
                sent: 10,
                received: 5
            }
        ));
    }

    #[test]
    fn preamble_detects_heavy_corruption_but_tolerates_light() {
        let wire = frame_bits(&[true, false]);
        assert_eq!(sync_errors(&wire), 0);
        let mut one_flip = wire.clone();
        one_flip[0] = !one_flip[0];
        assert_eq!(sync_errors(&one_flip), 1);
        assert!(deframe_bits(&one_flip, 2).is_ok());
        let mut heavy = wire;
        for bit in heavy.iter_mut().take(5) {
            *bit = !*bit;
        }
        assert!(deframe_bits(&heavy, 2).is_err());
    }

    #[test]
    fn symbol_repetition_outvotes_isolated_flips() {
        // A flip every 5th wire bit corrupts the unrepeated stream, but with
        // 3 copies per symbol it hits at most one copy of any symbol — the
        // majority vote cancels every error, at 3x the airtime.
        let payload: Vec<bool> = (0..48).map(|i| i % 2 == 0).collect();
        let dirty = Transceiver::raw()
            .transmit(&mut LoopbackChannel::with_flip_every(5), &payload)
            .unwrap();
        assert!(dirty.error_count() > 0, "control must see raw errors");

        let config = TransceiverConfig::raw().with_symbol_repeat(3);
        let (clean, _) = Transceiver::new(config)
            .transmit_detailed(&mut LoopbackChannel::with_flip_every(5), &payload)
            .unwrap();
        assert_eq!(clean.error_count(), 0, "repetition must outvote the flips");
        let coding = clean.coding.expect("coding summary attached");
        assert_eq!(coding.wire_bits, 48 * 3, "airtime counts every copy");
        assert_eq!(clean.elapsed.as_ps(), dirty.elapsed.as_ps() * 3);
    }

    #[test]
    fn symbol_repeat_zero_is_clamped_to_one() {
        let config = TransceiverConfig::raw().with_symbol_repeat(0);
        assert_eq!(config.effective_symbol_repeat(), 1);
        let mut channel = LoopbackChannel::perfect();
        let payload = vec![true; 16];
        let report = Transceiver::new(config)
            .transmit(&mut channel, &payload)
            .unwrap();
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.coding.unwrap().wire_bits, 16);
    }

    #[test]
    fn repetition_composes_with_a_link_code_in_framed_mode() {
        let payload: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let config = TransceiverConfig {
            frame_payload_bits: 32,
            warmup_symbols: 0,
            code: LinkCodeKind::Crc8,
            ..TransceiverConfig::paper_default()
        }
        .with_symbol_repeat(2);
        let mut channel = LoopbackChannel::perfect();
        let (report, stats) = Transceiver::new(config)
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        assert_eq!(report.error_count(), 0);
        assert_eq!(stats.retransmissions, 0);
        // Two frames of (preamble 8 + body 32 + crc 8) bits, each doubled.
        assert_eq!(report.coding.unwrap().wire_bits, 2 * (8 + 40) * 2);
    }

    #[test]
    fn calibration_usability_reflects_quality_and_symbol_time() {
        let good = Calibration {
            symbol_time: Time::from_us(3),
            quality: 4.0,
            detail: String::new(),
        };
        assert!(good.is_usable());
        let overlapping = Calibration {
            quality: 0.8,
            ..good.clone()
        };
        assert!(!overlapping.is_usable());
        let degenerate = Calibration {
            symbol_time: Time::ZERO,
            ..good
        };
        assert!(!degenerate.is_usable());
    }

    #[test]
    fn telemetry_counters_mirror_link_stats_and_spans_record() {
        let registry = Registry::new();
        let payload: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let config = TransceiverConfig {
            frame_payload_bits: 32,
            warmup_symbols: 0,
            max_retries: 3,
            code: LinkCodeKind::Crc8,
            ..TransceiverConfig::paper_default()
        };
        let mut channel = FlakyChannel {
            dirty_frames: 2,
            frames_seen: 0,
        };
        let (_, stats) = Transceiver::new(config)
            .with_telemetry(&registry)
            .transmit_detailed(&mut channel, &payload)
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("link.frames_sent"),
            Some(stats.frames_sent as u64)
        );
        assert_eq!(
            snap.counter("link.retransmissions"),
            Some(stats.retransmissions as u64)
        );
        assert_eq!(
            snap.counter("link.decode_failures"),
            Some(stats.decode_failures as u64)
        );
        assert_eq!(snap.counter("link.sync_failures"), Some(0));
        let simulate = snap.histogram("phase.simulate_ns").unwrap();
        assert_eq!(simulate.count(), stats.frames_sent as u64);
        let classify = snap.histogram("phase.classify_ns").unwrap();
        assert_eq!(classify.count(), stats.frames_sent as u64);
    }

    #[test]
    fn disabled_registry_keeps_the_engine_silent() {
        let registry = Registry::disabled();
        let mut channel = LoopbackChannel::perfect();
        let payload = vec![true; 32];
        Transceiver::paper_default()
            .with_telemetry(&registry)
            .transmit(&mut channel, &payload)
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("link."), 0);
        assert_eq!(snap.histogram("phase.simulate_ns").unwrap().count(), 0);
    }

    #[test]
    fn desync_model_probabilities_are_bounded() {
        let model = DesyncModel::paper_default();
        let p = model.per_set_probability(Time::from_us(10), Time::from_us(13));
        assert!(p > 0.0 && p <= 0.5);
        assert_eq!(model.per_set_probability(Time::ZERO, Time::from_us(1)), 0.0);
        let disabled = DesyncModel::disabled();
        assert_eq!(
            disabled.per_set_probability(Time::from_us(1), Time::from_us(9)),
            0.0
        );
    }
}
