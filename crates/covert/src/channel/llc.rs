//! The LLC-based Prime+Probe covert channel (Section III of the paper).
//!
//! One protocol round moves one bit and consists of the three phases of
//! Figure 5: a ready-to-send handshake over set group `S_A`, a
//! ready-to-receive handshake over set group `S_B`, and the data transfer
//! over set group `S_C`. Each set group contains `sets_per_role` redundant
//! LLC sets; the receiver fuses the per-set observations by majority vote.
//!
//! The channel implements [`CovertChannel`] and is driven end to end by the
//! shared [`crate::channel::engine::Transceiver`]; only the physical symbol
//! exchange lives here. It is generic over the [`MemorySystem`] backend, so
//! the same protocol runs against the paper's Kaby Lake + Gen9 model, the
//! partitioned-LLC mitigation, or a Gen11-class topology.
//!
//! The asymmetry of the two components shows up in three places, all modelled
//! here exactly as the paper describes them:
//!
//! * the GPU cannot address the LLC directly — every prime/probe from the GPU
//!   first has to evict its target lines from the non-inclusive L3, using one
//!   of the [`L3EvictionStrategy`] pollute sets;
//! * the GPU has no hardware timer, so its probes are classified with the
//!   custom SLM counter timer characterized by
//!   [`crate::timer_char::characterize_timer`];
//! * the 4:1 clock disparity means the two free-running loops drift; the
//!   drift is bridged with GPU thread-level parallelism and absorbed by the
//!   handshake, but residual slips corrupt occasional observations. The
//!   desynchronization model quantifies those slips from the measured phase
//!   durations (see [`DesyncModel`]).

use crate::channel::engine::{
    Calibration, ChannelDiagnostics, CovertChannel, FrameResult, Transceiver,
};
use crate::error::ChannelError;
use crate::metrics::TransmissionReport;
use crate::protocol::{try_majority_vote, ClassifierConfig, Direction, ProbeObservation, SetRole};
use crate::reverse::l3::{build_pollute_set, L3EvictionStrategy};
use crate::reverse::llc_sets::{addresses_in_llc_set, CPU_MISS_THRESHOLD_CYCLES};
use crate::timer_char::{characterize_timer, TimerCharacterization};
use cpu_exec::prelude::CpuThread;
use gpu_exec::prelude::{GpuKernel, GpuTopology, WorkGroupShape};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use soc_sim::clock::Time;
use soc_sim::llc::LlcSetId;
use soc_sim::page_table::PageKind;
use soc_sim::prelude::{BatchRequest, MemorySystem, PhysAddr, Soc, SocConfig};

pub use crate::channel::engine::DesyncModel;

/// Configuration of one LLC channel instance.
#[derive(Debug, Clone)]
pub struct LlcChannelConfig {
    /// Transmission direction.
    pub direction: Direction,
    /// How the GPU evicts its target lines from the L3.
    pub strategy: L3EvictionStrategy,
    /// Redundant LLC sets per protocol role (the paper settles on 2).
    pub sets_per_role: usize,
    /// Per-set probe classification.
    pub classifier: ClassifierConfig,
    /// Use GPU thread-level parallelism for prime/probe (the paper's
    /// optimization for the clock disparity). Disabling it is the ablation
    /// discussed in Section III-E.
    pub gpu_parallelism: bool,
    /// Simulator seed.
    pub seed: u64,
    /// SoC configuration (noise model, geometry) used when the channel builds
    /// its own backend via [`LlcChannel::new`]; ignored by
    /// [`LlcChannel::with_backend`].
    pub soc: SocConfig,
}

impl LlcChannelConfig {
    /// The paper's best configuration: GPU→CPU, precise L3 eviction, 2
    /// redundant sets, GPU parallelism enabled, quiet system.
    pub fn paper_default() -> Self {
        LlcChannelConfig {
            direction: Direction::GpuToCpu,
            strategy: L3EvictionStrategy::PreciseL3,
            sets_per_role: 2,
            classifier: ClassifierConfig::paper_default(),
            gpu_parallelism: true,
            seed: 7,
            soc: SocConfig::kaby_lake_i7_7700k(),
        }
    }

    /// Builder-style direction override.
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Builder-style strategy override.
    pub fn with_strategy(mut self, strategy: L3EvictionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style redundancy override.
    pub fn with_sets_per_role(mut self, sets: usize) -> Self {
        self.sets_per_role = sets;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for LlcChannelConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The resources backing one redundant LLC set.
#[derive(Debug, Clone)]
struct SetResources {
    /// The pre-agreed LLC set.
    llc_set: LlcSetId,
    /// The CPU party's `ways` conflicting lines for this set.
    cpu_lines: Vec<PhysAddr>,
    /// The GPU party's `ways` conflicting lines for this set.
    gpu_lines: Vec<PhysAddr>,
    /// The GPU pollute set that evicts `gpu_lines` from the L3.
    gpu_pollute: Vec<PhysAddr>,
    /// Precomputed prime batch: `cpu_lines` twice over, on the CPU party's
    /// core for this direction (two passes make the prime robust against
    /// LRU interleaving).
    cpu_prime_batch: Vec<BatchRequest>,
    /// Precomputed probe batch: `cpu_lines` once, same core.
    cpu_probe_batch: Vec<BatchRequest>,
}

/// Timing summary of the last transmitted bit, used for diagnostics and by
/// the desynchronization model.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseTimes {
    gpu_prime: Time,
    cpu_probe: Time,
    cpu_prime: Time,
    gpu_probe: Time,
}

/// A fully set-up LLC Prime+Probe channel (owns the simulated SoC and both
/// attacker processes).
///
/// Cloning snapshots the whole channel — backend, eviction sets, RNG and
/// calibration — so a deterministic setup can be paid for once and reused
/// across runs that share it (the sweep runner's per-cell template cache).
#[derive(Debug, Clone)]
pub struct LlcChannel<M: MemorySystem = Soc> {
    config: LlcChannelConfig,
    soc: M,
    /// Spy/receiver-side CPU thread (core 0).
    cpu_receiver: CpuThread,
    /// CPU thread that launched the GPU kernel (core 1); also acts as the
    /// CPU-side sender in the CPU→GPU direction.
    cpu_sender: CpuThread,
    gpu: GpuKernel,
    /// Set resources indexed `[role][redundant set]`.
    sets: Vec<Vec<SetResources>>,
    timer_char: TimerCharacterization,
    desync: DesyncModel,
    rng: SmallRng,
    calibration: Option<Calibration>,
    /// Reusable outcome buffer for the batched CPU prime/probe passes.
    scratch: Vec<soc_sim::prelude::AccessOutcome>,
}

impl LlcChannel<Soc> {
    /// Sets up the channel on a freshly built [`Soc`] backend configured by
    /// `config.soc`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError`] when buffers cannot be allocated, eviction
    /// sets cannot be found, or the custom timer cannot separate the cache
    /// levels under the configured noise.
    pub fn new(config: LlcChannelConfig) -> Result<Self, ChannelError> {
        let soc = Soc::new(config.soc.clone().with_seed(config.seed));
        Self::with_backend(soc, config)
    }
}

impl<M: MemorySystem> LlcChannel<M> {
    /// Sets up the channel end to end on an existing backend: allocates the
    /// trojan and spy buffers (1 GiB huge pages each), derives the per-role
    /// eviction sets and pollute sets, and characterizes the custom timer.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`LlcChannel::new`].
    pub fn with_backend(mut soc: M, config: LlcChannelConfig) -> Result<Self, ChannelError> {
        if config.sets_per_role == 0 {
            return Err(ChannelError::InvalidConfig(
                "sets_per_role must be at least 1".into(),
            ));
        }
        let ways = soc.llc().config().ways;

        // The two unprivileged processes: the spy and the trojan. SVM shares
        // the trojan's address space with the GPU; nothing is shared between
        // the two processes.
        let mut spy_space = soc.create_process();
        let mut trojan_space = soc.create_process();
        trojan_space.share_with_gpu();
        let spy_buf = soc.alloc(&mut spy_space, 1 << 30, PageKind::Huge)?;
        let trojan_buf = soc.alloc(&mut trojan_space, 1 << 30, PageKind::Huge)?;
        let spy_base = spy_space.translate(spy_buf.base).expect("huge page mapped");
        let trojan_base = trojan_space
            .translate(trojan_buf.base)
            .expect("huge page mapped");

        // The GPU kernel: one work-group, 16 access + 224 counter threads.
        let topology = GpuTopology::gen9_gt2();
        let shape = if config.gpu_parallelism {
            WorkGroupShape::paper_default(&topology)
        } else {
            // Ablation: a single access thread (rest of the first wavefront
            // idle), counters unchanged.
            WorkGroupShape::new(topology.max_workgroup_size, topology.wavefront_width, 1)
        };
        let gpu = GpuKernel::launch(topology, shape, 1);

        // Characterize the custom timer on the trojan's buffer before wiring
        // up the sets (the thresholds drive the GPU-side probe decisions).
        let mut gpu_for_char = GpuKernel::launch_attack_kernel();
        let timer_char = characterize_timer(
            &mut soc,
            &mut gpu_for_char,
            PhysAddr::new(trojan_base.value() + (512 << 20)),
            PhysAddr::new(trojan_base.value() + (640 << 20)),
            256 << 20,
            24,
        );
        if !timer_char.is_separable() {
            return Err(ChannelError::TimerNotSeparable);
        }

        // Pre-agreed LLC sets: spread over slices and set indices so the
        // role groups never interfere with each other in the LLC or the L3.
        let slice_count = soc.llc().slice_count();
        let total_sets = SetRole::ALL.len() * config.sets_per_role;
        let agreed: Vec<LlcSetId> = (0..total_sets)
            .map(|i| LlcSetId {
                slice: i % slice_count,
                set: 97 + i * 5,
            })
            .collect();
        let mut sets = Vec::with_capacity(SetRole::ALL.len());
        let mut set_counter = 0usize;
        for _role in SetRole::ALL {
            let mut role_sets = Vec::with_capacity(config.sets_per_role);
            for _ in 0..config.sets_per_role {
                let llc_set = agreed[set_counter];
                set_counter += 1;
                // The spy searches the first half of its huge page, the
                // trojan the first half of its own; the trojan's second half
                // is the pollute pool.
                let cpu_lines = addresses_in_llc_set(&soc, llc_set, spy_base, 512 << 20, ways)?;
                let gpu_lines = addresses_in_llc_set(&soc, llc_set, trojan_base, 256 << 20, ways)?;
                let mut gpu_pollute = build_pollute_set(
                    &soc,
                    config.strategy,
                    gpu_lines[0],
                    PhysAddr::new(trojan_base.value() + (256 << 20)),
                    256 << 20,
                )?;
                // No pollute address may alias *any* pre-agreed set (not just
                // this one), otherwise walking it would corrupt the other
                // roles' signals — the self-interference hazard of
                // Section III-D. Constructive strategies already avoid the
                // current target's set; this filter extends the constraint to
                // the whole agreed group (and is what makes the whole-L3
                // clearing strategy usable at all).
                gpu_pollute.retain(|a| !agreed.contains(&soc.llc().set_of(*a)));
                // The CPU party is fixed by the direction (receiver on core 0
                // for GPU→CPU, sender on core 1 for CPU→GPU), so the prime
                // and probe request batches can be built once here.
                let cpu_core = match config.direction {
                    Direction::GpuToCpu => 0,
                    Direction::CpuToGpu => 1,
                };
                let as_load = |a: &PhysAddr| BatchRequest::CpuLoad {
                    core: cpu_core,
                    paddr: *a,
                };
                let cpu_probe_batch: Vec<_> = cpu_lines.iter().map(as_load).collect();
                let cpu_prime_batch: Vec<_> = cpu_lines
                    .iter()
                    .chain(cpu_lines.iter())
                    .map(as_load)
                    .collect();
                role_sets.push(SetResources {
                    llc_set,
                    cpu_lines,
                    gpu_lines,
                    gpu_pollute,
                    cpu_prime_batch,
                    cpu_probe_batch,
                });
            }
            sets.push(role_sets);
        }

        Ok(LlcChannel {
            rng: SmallRng::seed_from_u64(config.seed ^ 0xA5A5_5A5A),
            cpu_receiver: CpuThread::pinned(0),
            cpu_sender: CpuThread::pinned(1),
            gpu,
            sets,
            timer_char,
            desync: DesyncModel::paper_default(),
            soc,
            config,
            calibration: None,
            scratch: Vec::new(),
        })
    }

    /// The channel configuration.
    pub fn config(&self) -> &LlcChannelConfig {
        &self.config
    }

    /// The backend the channel runs against.
    pub fn backend(&self) -> &M {
        &self.soc
    }

    /// Mutable access to the backend, e.g. to re-attach a fresh telemetry
    /// registry after cloning a calibrated channel template.
    pub fn backend_mut(&mut self) -> &mut M {
        &mut self.soc
    }

    /// The custom-timer characterization used by GPU-side probes.
    pub fn timer_characterization(&self) -> &TimerCharacterization {
        &self.timer_char
    }

    /// The pre-agreed LLC sets, per role.
    pub fn agreed_sets(&self, role: SetRole) -> Vec<LlcSetId> {
        let idx = SetRole::ALL
            .iter()
            .position(|r| *r == role)
            .expect("known role");
        self.sets[idx].iter().map(|s| s.llc_set).collect()
    }

    /// Overrides the desynchronization model (for ablations). Any cached
    /// calibration is dropped — the symbol timing and quality it recorded
    /// were measured under the previous model.
    pub fn set_desync_model(&mut self, model: DesyncModel) {
        self.desync = model;
        self.calibration = None;
    }

    /// Latest local time among the three agents.
    fn latest_time(&self) -> Time {
        self.cpu_receiver
            .now()
            .max(self.cpu_sender.now())
            .max(self.gpu.now())
    }

    /// Thread-level parallelism the GPU dedicates to one set's accesses.
    ///
    /// The redundant sets of a role are handled by disjoint groups of access
    /// threads running concurrently (the paper's work-group has 256 threads,
    /// far more than the 16-per-set minimum), so with parallelism enabled the
    /// GPU-side cost of a phase barely grows with the redundancy level.
    fn gpu_set_parallelism(&self) -> usize {
        if self.config.gpu_parallelism {
            (self.gpu.effective_parallelism() * self.config.sets_per_role).min(128)
        } else {
            self.gpu.effective_parallelism()
        }
    }

    /// GPU primes every redundant set of `role`: pollute the L3, then touch
    /// the GPU's lines so they land in the LLC and displace the other side's.
    fn gpu_prime(&mut self, role: SetRole) -> Time {
        let parallelism = self.gpu_set_parallelism();
        let role_idx = SetRole::ALL
            .iter()
            .position(|r| *r == role)
            .expect("known role");
        let LlcChannel { sets, gpu, soc, .. } = self;
        let start = gpu.now();
        for set in &sets[role_idx] {
            gpu.parallel_load_with(soc, &set.gpu_pollute, parallelism);
            gpu.parallel_load_with(soc, &set.gpu_lines, parallelism);
        }
        gpu.now() - start
    }

    /// GPU probes every redundant set of `role` with the custom timer,
    /// returning one observation per set.
    fn gpu_probe(&mut self, role: SetRole) -> (Vec<ProbeObservation>, Time) {
        let parallelism = self.gpu_set_parallelism();
        let role_idx = SetRole::ALL
            .iter()
            .position(|r| *r == role)
            .expect("known role");
        let threshold = self.timer_char.llc_memory_threshold();
        let LlcChannel { sets, gpu, soc, .. } = self;
        let start = gpu.now();
        let mut observations = Vec::with_capacity(sets[role_idx].len());
        for set in &sets[role_idx] {
            // Push the probe lines out of the L3 first, so the timed accesses
            // observe the LLC (fast, line still ours) or DRAM (slow, evicted).
            gpu.parallel_load_with(soc, &set.gpu_pollute, parallelism);
            let noise = soc.timer_noise_factor();
            let outcome = gpu.parallel_load_with(soc, &set.gpu_lines, parallelism);
            let slow = outcome
                .outcomes
                .iter()
                .filter(|o| gpu.timer().ticks_for(o.latency, noise) > threshold)
                .count();
            observations.push(ProbeObservation::new(slow, set.gpu_lines.len()));
        }
        (observations, gpu.now() - start)
    }

    /// CPU (receiver or sender, depending on direction) primes every
    /// redundant set of `role` by walking its own lines.
    fn cpu_prime(&mut self, role: SetRole, use_receiver: bool) -> Time {
        let role_idx = SetRole::ALL
            .iter()
            .position(|r| *r == role)
            .expect("known role");
        let LlcChannel {
            sets,
            soc,
            cpu_receiver,
            cpu_sender,
            scratch,
            ..
        } = self;
        let thread = if use_receiver {
            cpu_receiver
        } else {
            cpu_sender
        };
        let start = thread.now();
        for set in &sets[role_idx] {
            scratch.clear();
            thread.run_batch(soc, &set.cpu_prime_batch, scratch);
        }
        thread.now() - start
    }

    /// CPU probes every redundant set of `role`, timing each way.
    fn cpu_probe(&mut self, role: SetRole, use_receiver: bool) -> (Vec<ProbeObservation>, Time) {
        let role_idx = SetRole::ALL
            .iter()
            .position(|r| *r == role)
            .expect("known role");
        let LlcChannel {
            sets,
            soc,
            cpu_receiver,
            cpu_sender,
            scratch,
            ..
        } = self;
        let thread = if use_receiver {
            cpu_receiver
        } else {
            cpu_sender
        };
        let start = thread.now();
        let mut observations = Vec::with_capacity(sets[role_idx].len());
        for set in &sets[role_idx] {
            scratch.clear();
            let batch_start = thread.now();
            thread.run_batch(soc, &set.cpu_probe_batch, scratch);
            // Recover the per-access `rdtsc(); load; rdtsc()` measurement
            // from the chained outcomes: each load issued at the running
            // time and took its outcome's latency, and `rdtsc` is a pure
            // function of local time.
            let mut at = batch_start;
            let mut slow = 0usize;
            for outcome in scratch.iter() {
                let before = thread.clock().time_to_cycles(at);
                let after = thread.clock().time_to_cycles(at + outcome.latency);
                if after - before > CPU_MISS_THRESHOLD_CYCLES {
                    slow += 1;
                }
                at += outcome.latency;
            }
            observations.push(ProbeObservation::new(slow, set.cpu_lines.len()));
        }
        (observations, thread.now() - start)
    }

    /// Applies the shared desynchronization model to a set of observations.
    fn apply_desync(
        &mut self,
        observations: &mut [ProbeObservation],
        sender_time: Time,
        receiver_time: Time,
        gpu_timed_phase: bool,
    ) {
        let ways = self.soc.llc().config().ways;
        self.desync.corrupt_observations(
            &mut self.rng,
            observations,
            sender_time,
            receiver_time,
            gpu_timed_phase,
            ways,
        );
    }

    /// Synchronizes all three agents to the latest local time among them.
    fn barrier(&mut self) {
        let t = self.latest_time();
        self.cpu_receiver.synchronize_to(t);
        self.cpu_sender.synchronize_to(t);
        self.gpu.synchronize_to(t);
    }

    /// Transmits one bit, returning the receiver's decoded value.
    fn transmit_bit(&mut self, bit: bool) -> Result<bool, ChannelError> {
        let mut times = PhaseTimes::default();
        let floor_slip = self.rng.gen_bool(self.desync.floor);
        let classifier = self.config.classifier;
        match self.config.direction {
            Direction::GpuToCpu => {
                // Phase 1 — ready to send: GPU primes S_A, CPU probes it.
                times.gpu_prime = self.gpu_prime(SetRole::ReadyToSend);
                self.barrier();
                let (mut rts_obs, t) = self.cpu_probe(SetRole::ReadyToSend, true);
                times.cpu_probe = t;
                self.apply_desync(&mut rts_obs, times.gpu_prime, times.cpu_probe, false);
                let rts_ok = try_majority_vote(&rts_obs, classifier)?;

                // Phase 2 — ready to receive: CPU primes S_B, GPU probes it.
                times.cpu_prime = self.cpu_prime(SetRole::ReadyToReceive, true);
                self.barrier();
                let (mut rtr_obs, t) = self.gpu_probe(SetRole::ReadyToReceive);
                times.gpu_probe = t;
                self.apply_desync(&mut rtr_obs, times.cpu_prime, times.gpu_probe, true);
                let rtr_ok = try_majority_vote(&rtr_obs, classifier)?;

                // Phase 3 — data: GPU primes S_C for a 1, stays idle for a 0.
                if bit {
                    self.gpu_prime(SetRole::Data);
                } else {
                    // The GPU still runs its loop iteration; it just skips the
                    // priming accesses.
                    self.gpu.advance(Time::from_ps(times.gpu_prime.as_ps() / 4));
                }
                self.barrier();
                let (mut data_obs, t) = self.cpu_probe(SetRole::Data, true);
                self.apply_desync(&mut data_obs, times.gpu_prime, t, false);
                self.barrier();

                let handshake_ok = rts_ok && rtr_ok && !floor_slip;
                if handshake_ok {
                    try_majority_vote(&data_obs, classifier)
                } else {
                    // A slipped round decodes garbage.
                    Ok(self.rng.gen_bool(0.5))
                }
            }
            Direction::CpuToGpu => {
                // Mirror image: the CPU (sender, core 1) primes, the GPU probes
                // the handshake and the data set with the custom timer.
                times.cpu_prime = self.cpu_prime(SetRole::ReadyToSend, false);
                self.barrier();
                let (mut rts_obs, t) = self.gpu_probe(SetRole::ReadyToSend);
                times.gpu_probe = t;
                self.apply_desync(&mut rts_obs, times.cpu_prime, times.gpu_probe, true);
                let rts_ok = try_majority_vote(&rts_obs, classifier)?;

                times.gpu_prime = self.gpu_prime(SetRole::ReadyToReceive);
                self.barrier();
                let (mut rtr_obs, t) = self.cpu_probe(SetRole::ReadyToReceive, false);
                times.cpu_probe = t;
                self.apply_desync(&mut rtr_obs, times.gpu_prime, times.cpu_probe, false);
                let rtr_ok = try_majority_vote(&rtr_obs, classifier)?;

                if bit {
                    self.cpu_prime(SetRole::Data, false);
                } else {
                    self.cpu_sender
                        .advance(Time::from_ps(times.cpu_prime.as_ps() / 4));
                }
                self.barrier();
                let (mut data_obs, t) = self.gpu_probe(SetRole::Data);
                self.apply_desync(&mut data_obs, times.cpu_prime, t, true);
                self.barrier();

                let handshake_ok = rts_ok && rtr_ok && !floor_slip;
                if handshake_ok {
                    try_majority_vote(&data_obs, classifier)
                } else {
                    Ok(self.rng.gen_bool(0.5))
                }
            }
        }
    }

    /// Transmits a bit string through the shared engine in raw mode and
    /// reports bandwidth and error rate (the per-figure evaluation loop).
    pub fn transmit(&mut self, bits: &[bool]) -> TransmissionReport {
        Transceiver::raw()
            .transmit(self, bits)
            .expect("raw LLC transmission over a constructed channel cannot fail")
    }
}

impl<M: MemorySystem> CovertChannel for LlcChannel<M> {
    fn calibrate(&mut self) -> Result<Calibration, ChannelError> {
        if let Some(cal) = &self.calibration {
            return Ok(cal.clone());
        }
        // Two warm-up symbols double as the timing probe: steady-state cache
        // contents after them, and their duration is the symbol time.
        let start = self.latest_time();
        self.transmit_bit(true)?;
        self.transmit_bit(false)?;
        let elapsed = self.latest_time() - start;
        let symbol_time = Time::from_ps(elapsed.as_ps() / 2);
        // Separation quality of the GPU-side classifier: gap between the LLC
        // and memory tick populations relative to their spread.
        let gap = self.timer_char.memory.mean - self.timer_char.llc.mean;
        let spread = (self.timer_char.llc.std_dev + self.timer_char.memory.std_dev).max(1e-9);
        let cal = Calibration {
            symbol_time,
            quality: gap / spread,
            detail: format!(
                "{} over {} redundant sets, {} strategy, symbol {:.1} us",
                self.config.direction.label(),
                self.config.sets_per_role,
                self.config.strategy.label(),
                symbol_time.as_us_f64(),
            ),
        };
        self.calibration = Some(cal.clone());
        Ok(cal)
    }

    fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError> {
        let start = self.latest_time();
        let mut received = Vec::with_capacity(bits.len());
        for &bit in bits {
            received.push(self.transmit_bit(bit)?);
        }
        Ok(FrameResult {
            received,
            elapsed: self.latest_time() - start,
        })
    }

    fn nominal_symbol_time(&self) -> Time {
        match &self.calibration {
            Some(cal) => cal.symbol_time,
            // Pre-calibration estimate: three phases of two LLC-set walks.
            None => Time::from_us(8),
        }
    }

    fn advance_idle(&mut self, delta: Time) {
        // All three attacker clocks sit out the peer's slot, so a noise
        // schedule walked by access timestamp sees the airtime pass.
        self.cpu_receiver.advance(delta);
        self.cpu_sender.advance(delta);
        self.gpu.advance(delta);
    }

    fn diagnostics(&self) -> ChannelDiagnostics {
        ChannelDiagnostics {
            channel: "llc-prime-probe",
            backend: crate::channel::engine::backend_summary(&self.soc),
            entries: vec![
                ("sets_per_role", self.config.sets_per_role as f64),
                (
                    "per_set_threshold",
                    self.config.classifier.per_set_threshold as f64,
                ),
                (
                    "llc_memory_threshold_ticks",
                    self.timer_char.llc_memory_threshold() as f64,
                ),
                ("desync_floor", self.desync.floor),
                (
                    "gpu_parallelism",
                    f64::from(u8::from(self.config.gpu_parallelism)),
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_pattern;
    use soc_sim::prelude::{BackendRegistry, NoiseConfig};

    fn noiseless_config() -> LlcChannelConfig {
        LlcChannelConfig {
            soc: SocConfig::kaby_lake_noiseless(),
            ..LlcChannelConfig::paper_default()
        }
    }

    /// A desync model with everything switched off, for deterministic tests.
    fn no_desync() -> DesyncModel {
        DesyncModel {
            mismatch_weight: 0.0,
            timer_corruption: 0.0,
            floor: 0.0,
        }
    }

    #[test]
    fn noiseless_channel_is_error_free() {
        let mut ch = LlcChannel::new(noiseless_config()).unwrap();
        ch.set_desync_model(no_desync());
        let bits = test_pattern(64, 1);
        let report = ch.transmit(&bits);
        assert_eq!(report.error_count(), 0, "received {:?}", report.received);
        assert!(
            report.bandwidth_kbps() > 10.0,
            "bw {}",
            report.bandwidth_kbps()
        );
    }

    #[test]
    fn noiseless_cpu_to_gpu_channel_is_error_free() {
        let mut ch =
            LlcChannel::new(noiseless_config().with_direction(Direction::CpuToGpu)).unwrap();
        ch.set_desync_model(no_desync());
        let bits = test_pattern(48, 2);
        let report = ch.transmit(&bits);
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn precise_strategy_is_faster_than_full_clear() {
        let bits = test_pattern(24, 3);
        let mut precise = LlcChannel::new(noiseless_config()).unwrap();
        precise.set_desync_model(no_desync());
        let bw_precise = precise.transmit(&bits).bandwidth_kbps();
        let mut full =
            LlcChannel::new(noiseless_config().with_strategy(L3EvictionStrategy::FullL3Clear))
                .unwrap();
        full.set_desync_model(no_desync());
        let bw_full = full.transmit(&bits).bandwidth_kbps();
        assert!(
            bw_precise > bw_full * 10.0,
            "precise {bw_precise} kbps should dwarf full-clear {bw_full} kbps"
        );
    }

    #[test]
    fn quiet_system_error_rate_is_low_with_two_sets() {
        let mut ch = LlcChannel::new(LlcChannelConfig::paper_default()).unwrap();
        let bits = test_pattern(400, 4);
        let report = ch.transmit(&bits);
        let err = report.error_rate();
        assert!(
            err < 0.08,
            "error rate {err} too high for the 2-set configuration"
        );
        assert!(report.bandwidth_kbps() > 30.0);
    }

    #[test]
    fn redundancy_reduces_error_rate() {
        let bits = test_pattern(500, 5);
        let mut one_set =
            LlcChannel::new(LlcChannelConfig::paper_default().with_sets_per_role(1)).unwrap();
        let err_one = one_set.transmit(&bits).error_rate();
        let mut two_sets =
            LlcChannel::new(LlcChannelConfig::paper_default().with_sets_per_role(2)).unwrap();
        let err_two = two_sets.transmit(&bits).error_rate();
        assert!(
            err_two < err_one,
            "2-set error {err_two} should be below 1-set error {err_one}"
        );
    }

    #[test]
    fn agreed_sets_are_distinct_across_roles() {
        let ch = LlcChannel::new(noiseless_config()).unwrap();
        let mut all = Vec::new();
        for role in SetRole::ALL {
            all.extend(ch.agreed_sets(role));
        }
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len(), "roles must not share LLC sets");
        assert_eq!(all.len(), 3 * ch.config().sets_per_role);
    }

    #[test]
    fn zero_sets_per_role_is_rejected() {
        let err = LlcChannel::new(noiseless_config().with_sets_per_role(0)).unwrap_err();
        assert!(matches!(err, ChannelError::InvalidConfig(_)));
    }

    #[test]
    fn unusable_timer_is_reported() {
        let cfg = LlcChannelConfig {
            soc: SocConfig::kaby_lake_i7_7700k().with_noise(NoiseConfig {
                latency_jitter_ps: 80_000.0,
                spurious_eviction_prob: 0.0,
                timer_rate_jitter: 0.8,
            }),
            ..LlcChannelConfig::paper_default()
        };
        let err = LlcChannel::new(cfg).unwrap_err();
        assert_eq!(err, ChannelError::TimerNotSeparable);
    }

    #[test]
    fn channel_runs_on_a_gen11_class_backend() {
        let backend = BackendRegistry::standard()
            .get("gen11-class")
            .expect("registry entry")
            .build(41);
        let mut ch =
            LlcChannel::with_backend(backend, LlcChannelConfig::paper_default().with_seed(41))
                .unwrap();
        ch.set_desync_model(no_desync());
        let report = ch.transmit(&test_pattern(64, 6));
        assert!(
            report.error_rate() < 0.10,
            "Gen11-class backend error {}",
            report.error_rate()
        );
        assert!(ch.diagnostics().backend.contains("16 MB"));
    }

    #[test]
    fn calibration_is_cached_and_usable() {
        let mut ch = LlcChannel::new(noiseless_config()).unwrap();
        ch.set_desync_model(no_desync());
        let first = CovertChannel::calibrate(&mut ch).unwrap();
        assert!(first.is_usable(), "quality {}", first.quality);
        let second = CovertChannel::calibrate(&mut ch).unwrap();
        assert_eq!(
            first, second,
            "second calibrate must return the cached result"
        );
        assert_eq!(ch.nominal_symbol_time(), first.symbol_time);
    }

    #[test]
    fn partitioned_backend_degrades_the_channel_not_the_setup() {
        // The Section VI mitigation breaks cross-component eviction, so the
        // channel sets up fine but decodes noise — exactly what the sweep
        // runner needs to record (an outcome, not a crash).
        let backend = BackendRegistry::standard()
            .get("kabylake-gen9-partitioned")
            .expect("registry entry")
            .build(17);
        let mut ch = LlcChannel::with_backend(
            backend,
            LlcChannelConfig {
                soc: SocConfig::kaby_lake_noiseless(),
                ..LlcChannelConfig::paper_default().with_seed(17)
            },
        )
        .unwrap();
        let report = ch.transmit(&test_pattern(120, 9));
        assert!(
            report.error_rate() > 0.25,
            "partitioned LLC should break decoding, error {}",
            report.error_rate()
        );
    }
}
