//! The two cross-component covert channels of the paper, unified behind the
//! shared transceiver engine.
//!
//! * [`engine`] — the [`engine::CovertChannel`] trait every channel
//!   implements, and the [`engine::Transceiver`] that owns framing,
//!   classification plumbing, retries and report assembly.
//! * [`llc`] — the Prime+Probe channel over shared LLC sets (Section III),
//!   available in both directions (GPU→CPU and CPU→GPU) and with the three
//!   L3-eviction strategies of Figure 7.
//! * [`contention`] — the ring-bus / LLC-port contention channel
//!   (Section IV), which needs no shared cache sets at all: the receiver
//!   simply times its own LLC traffic and detects the slowdown caused by the
//!   sender's concurrent traffic.
//!
//! Both channels are generic over the [`soc_sim::backend::MemorySystem`]
//! backend, defaulting to the paper's Kaby Lake + Gen9 [`soc_sim::system::Soc`].

pub mod contention;
pub mod engine;
pub mod llc;
