//! The two cross-component covert channels of the paper.
//!
//! * [`llc`] — the Prime+Probe channel over shared LLC sets (Section III),
//!   available in both directions (GPU→CPU and CPU→GPU) and with the three
//!   L3-eviction strategies of Figure 7.
//! * [`contention`] — the ring-bus / LLC-port contention channel
//!   (Section IV), which needs no shared cache sets at all: the receiver
//!   simply times its own LLC traffic and detects the slowdown caused by the
//!   sender's concurrent traffic.

pub mod contention;
pub mod llc;
