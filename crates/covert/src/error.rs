//! Error types for the covert-channel library.

use soc_sim::page_table::MapError;
use std::fmt;

/// Errors raised while setting up or running a covert channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// A buffer allocation failed.
    Allocation(MapError),
    /// An eviction set of the requested size could not be constructed.
    EvictionSetNotFound {
        /// How many conflicting addresses were requested.
        requested: usize,
        /// How many were found.
        found: usize,
    },
    /// The custom GPU timer cannot separate the cache levels under the
    /// current configuration (its resolution is too coarse).
    TimerNotSeparable,
    /// A channel configuration parameter was invalid.
    InvalidConfig(String),
    /// A classifier was asked to decide a bit from zero probe observations
    /// (a protocol-level bug surfaced as an error instead of an abort, so a
    /// sweep over many scenarios can record the failure and keep going).
    EmptyObservations,
    /// A channel returned a received bit string whose length does not match
    /// what was sent.
    ReportShape {
        /// Bits handed to the channel.
        sent: usize,
        /// Bits the channel returned.
        received: usize,
    },
    /// A scenario exceeded its wall-clock budget and was abandoned by the
    /// harness (the sweep runner records this instead of stalling the grid).
    TimeBudgetExceeded {
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Allocation(e) => write!(f, "buffer allocation failed: {e}"),
            ChannelError::EvictionSetNotFound { requested, found } => write!(
                f,
                "could not build an eviction set: requested {requested} conflicting lines, found {found}"
            ),
            ChannelError::TimerNotSeparable => {
                write!(f, "custom timer cannot separate cache levels at this resolution")
            }
            ChannelError::InvalidConfig(msg) => write!(f, "invalid channel configuration: {msg}"),
            ChannelError::EmptyObservations => {
                write!(f, "classifier received zero probe observations")
            }
            ChannelError::ReportShape { sent, received } => write!(
                f,
                "channel returned {received} bits for a {sent}-bit transmission"
            ),
            ChannelError::TimeBudgetExceeded { budget_ms } => {
                write!(f, "scenario exceeded its {budget_ms} ms time budget")
            }
        }
    }
}

impl std::error::Error for ChannelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChannelError::Allocation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MapError> for ChannelError {
    fn from(e: MapError) -> Self {
        ChannelError::Allocation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ChannelError::EvictionSetNotFound {
            requested: 16,
            found: 3,
        };
        let s = format!("{e}");
        assert!(s.contains("16") && s.contains("3"));
        assert!(!format!("{}", ChannelError::TimerNotSeparable).is_empty());
        assert!(format!("{}", ChannelError::InvalidConfig("x".into())).contains('x'));
    }

    #[test]
    fn map_error_converts_and_exposes_source() {
        use std::error::Error;
        let e: ChannelError = MapError::EmptyAllocation.into();
        assert!(matches!(e, ChannelError::Allocation(_)));
        assert!(e.source().is_some());
        assert!(ChannelError::TimerNotSeparable.source().is_none());
    }
}
