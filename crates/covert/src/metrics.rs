//! Channel evaluation metrics: bandwidth, bit-error rate, goodput,
//! confidence intervals.
//!
//! The paper reports every configuration as a (bandwidth, error-rate) pair,
//! with 95 % confidence intervals over 1000 runs for the contention channel
//! (Figure 10). This module provides those computations for the benchmark
//! harness, plus the link-layer coding metrics (code rate, corrected bits,
//! residual BER, goodput) the FEC layer adds on top.

use crate::code::LinkCodeKind;
use crate::error::ChannelError;
use soc_sim::clock::Time;

/// Link-coding statistics of one engine transmission, attached to the
/// [`TransmissionReport`] when the transceiver ran with a
/// [`LinkCodeKind`] (including the `None` baseline in framed mode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodingSummary {
    /// The link code the engine ran with.
    pub code: LinkCodeKind,
    /// Nominal code rate (payload bits per coded wire bit), in `(0, 1]`.
    pub code_rate: f64,
    /// Payload bits per frame the engine framed with.
    pub frame_payload_bits: usize,
    /// Total wire bits moved, including preambles and retransmissions.
    pub wire_bits: usize,
    /// Bits the decoder repaired across all frames.
    pub corrected_bits: usize,
    /// Detected-but-uncorrectable error events that survived the retry
    /// budget (frames accepted dirty).
    pub residual_errors: usize,
}

/// One adaptation window of an
/// [`crate::adapt::AdaptiveTransceiver`] run: the link setting the window
/// ran with and what it achieved.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRecord {
    /// Zero-based window index within the transmission.
    pub index: usize,
    /// Link code the window ran with.
    pub code: LinkCodeKind,
    /// Symbol-repeat factor the window ran with (effective symbol time is
    /// this many nominal symbol times).
    pub symbol_repeat: usize,
    /// Payload bits attempted in the window.
    pub payload_bits: usize,
    /// Wire bits moved for the window (coding overhead, repetition and
    /// retransmissions included).
    pub wire_bits: usize,
    /// Goodput achieved over the window (kb/s).
    pub goodput_kbps: f64,
    /// Residual bit-error rate of the window after decoding.
    pub residual_ber: f64,
    /// Frame retransmissions within the window.
    pub retransmissions: usize,
    /// Bits the link-code decoder repaired within the window.
    pub corrected_bits: usize,
    /// Frame decodes that reported uncorrectable residual errors.
    pub decode_failures: usize,
    /// Simulated time the window took.
    pub elapsed: Time,
}

/// The per-window history of one adaptive transmission.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdaptationTrace {
    /// Window records, in transmission order.
    pub windows: Vec<WindowRecord>,
}

impl AdaptationTrace {
    /// Total payload bits across all windows.
    pub fn total_payload_bits(&self) -> usize {
        self.windows.iter().map(|w| w.payload_bits).sum()
    }

    /// Total wire bits across all windows.
    pub fn total_wire_bits(&self) -> usize {
        self.windows.iter().map(|w| w.wire_bits).sum()
    }

    /// Total simulated time across all windows.
    pub fn total_elapsed(&self) -> Time {
        Time::from_ps(self.windows.iter().map(|w| w.elapsed.as_ps()).sum())
    }

    /// Number of windows whose setting differs from the previous window's.
    pub fn switches(&self) -> usize {
        self.windows
            .windows(2)
            .filter(|pair| {
                pair[0].code != pair[1].code || pair[0].symbol_repeat != pair[1].symbol_repeat
            })
            .count()
    }
}

/// One rung of a goodput-estimating controller's internal model at the end
/// of a run: the setting and what the controller believed it delivers.
///
/// Produced by controllers that keep per-rung statistics (the bandit); the
/// trial-based policies have no standing model and report none.
#[derive(Debug, Clone, PartialEq)]
pub struct RungEstimate {
    /// Link code of the rung.
    pub code: LinkCodeKind,
    /// Symbol-repeat factor of the rung.
    pub symbol_repeat: usize,
    /// The controller's goodput estimate for the rung (kb/s). NaN-free: an
    /// unvisited rung reports 0.0 with zero weight.
    pub goodput_kbps: f64,
    /// Decayed observation weight behind the estimate (0 = never visited,
    /// higher = fresher evidence).
    pub weight: f64,
}

/// Summary of a closed-loop adaptive transmission, attached to the
/// [`TransmissionReport`] by the [`crate::adapt::AdaptiveTransceiver`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationSummary {
    /// Name of the [`crate::adapt::LinkController`] policy that drove the
    /// run.
    pub policy: String,
    /// Payload bits per adaptation window the transceiver re-chunked with.
    pub window_bits: usize,
    /// Number of setting changes the controller made mid-transmission.
    pub switches: usize,
    /// Link code in force when the transmission ended.
    pub final_code: LinkCodeKind,
    /// Symbol-repeat factor in force when the transmission ended.
    pub final_symbol_repeat: usize,
    /// The controller's final per-rung goodput model, for controllers that
    /// keep one (empty otherwise).
    pub rung_estimates: Vec<RungEstimate>,
    /// The full per-window history.
    pub trace: AdaptationTrace,
}

/// Result of transmitting a known bit string over a channel.
#[derive(Debug, Clone, PartialEq)]
pub struct TransmissionReport {
    /// Bits the trojan attempted to send.
    pub sent: Vec<bool>,
    /// Bits the spy decoded.
    pub received: Vec<bool>,
    /// Total simulated wall-clock time of the transmission.
    pub elapsed: Time,
    /// Link-coding statistics, when the transceiver engine produced them.
    pub coding: Option<CodingSummary>,
    /// Per-window adaptation history, when the adaptive transceiver
    /// produced the report.
    pub adaptation: Option<AdaptationSummary>,
}

impl TransmissionReport {
    /// Creates a report.
    ///
    /// # Panics
    ///
    /// Panics if the sent and received strings have different lengths.
    pub fn new(sent: Vec<bool>, received: Vec<bool>, elapsed: Time) -> Self {
        assert_eq!(sent.len(), received.len(), "sent/received length mismatch");
        TransmissionReport {
            sent,
            received,
            elapsed,
            coding: None,
            adaptation: None,
        }
    }

    /// Non-aborting constructor used by the transceiver engine: a channel
    /// that mis-assembles a frame surfaces as a recordable error instead of
    /// killing a whole scenario sweep.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::ReportShape`] when the lengths differ.
    pub fn try_new(
        sent: Vec<bool>,
        received: Vec<bool>,
        elapsed: Time,
    ) -> Result<Self, ChannelError> {
        if sent.len() != received.len() {
            return Err(ChannelError::ReportShape {
                sent: sent.len(),
                received: received.len(),
            });
        }
        Ok(TransmissionReport {
            sent,
            received,
            elapsed,
            coding: None,
            adaptation: None,
        })
    }

    /// Attaches the engine's link-coding statistics.
    pub fn with_coding(mut self, coding: CodingSummary) -> Self {
        self.coding = Some(coding);
        self
    }

    /// Attaches an adaptive run's per-window history.
    pub fn with_adaptation(mut self, adaptation: AdaptationSummary) -> Self {
        self.adaptation = Some(adaptation);
        self
    }

    /// Number of bits transmitted.
    pub fn bit_count(&self) -> usize {
        self.sent.len()
    }

    /// Number of bit errors.
    pub fn error_count(&self) -> usize {
        self.sent
            .iter()
            .zip(&self.received)
            .filter(|(s, r)| s != r)
            .count()
    }

    /// Bit-error rate in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        if self.sent.is_empty() {
            0.0
        } else {
            self.error_count() as f64 / self.sent.len() as f64
        }
    }

    /// Raw channel bandwidth in kilobits per second (as the paper reports
    /// it: transmitted bits over elapsed time, not discounted by errors).
    pub fn bandwidth_kbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.sent.len() as f64 / secs / 1_000.0
    }

    /// Residual bit-error rate: errors remaining *after* link-layer
    /// decoding, over the delivered payload. Identical to
    /// [`TransmissionReport::error_rate`] — the received string is always
    /// post-decode — but named for the coded-channel reports, where it is
    /// the number the code is trying to drive to zero.
    pub fn residual_ber(&self) -> f64 {
        self.error_rate()
    }

    /// Payload bits of *intact* frames: chunks of the transmission (at the
    /// attached [`CodingSummary`]'s frame granularity; the whole payload as
    /// one frame without one) whose received bits match what was sent. The
    /// numerator of [`TransmissionReport::goodput_kbps`], exposed so
    /// aggregations (e.g. the duplex scheduler's two-way goodput) share one
    /// definition of "clean".
    pub fn clean_bits(&self) -> usize {
        if self.sent.is_empty() {
            return 0;
        }
        let frame = self
            .coding
            .map_or(self.sent.len(), |c| c.frame_payload_bits.max(1))
            .min(self.sent.len());
        self.sent
            .chunks(frame)
            .zip(self.received.chunks(frame))
            .filter(|(s, r)| s == r)
            .map(|(s, _)| s.len())
            .sum()
    }

    /// Goodput in kilobits per second: payload bits of *intact* frames over
    /// total elapsed time. Retransmissions and coding overhead stretch the
    /// elapsed time, and a frame delivered with any residual bit error
    /// contributes nothing — so this is the honest "useful bits per second"
    /// figure that raw [`TransmissionReport::bandwidth_kbps`] is not.
    ///
    /// Frame boundaries come from the attached [`CodingSummary`]; without
    /// one the whole payload counts as a single frame.
    pub fn goodput_kbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 || self.sent.is_empty() {
            return 0.0;
        }
        self.clean_bits() as f64 / secs / 1_000.0
    }

    /// Average time per transmitted bit.
    pub fn time_per_bit(&self) -> Time {
        if self.sent.is_empty() {
            Time::ZERO
        } else {
            Time::from_ps(self.elapsed.as_ps() / self.sent.len() as u64)
        }
    }
}

/// Summary statistics of a set of samples (one per experiment run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval of the mean.
    pub ci95_half_width: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SampleStats {
    /// Computes statistics over `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let ci95_half_width = if n > 1 {
            1.96 * std_dev / (n as f64).sqrt()
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        SampleStats {
            n,
            mean,
            std_dev,
            ci95_half_width,
            min,
            max,
        }
    }

    /// Lower bound of the 95 % confidence interval.
    pub fn ci95_low(&self) -> f64 {
        self.mean - self.ci95_half_width
    }

    /// Upper bound of the 95 % confidence interval.
    pub fn ci95_high(&self) -> f64 {
        self.mean + self.ci95_half_width
    }
}

/// Generates a deterministic pseudo-random payload of `bits` bits, used by
/// the evaluation harness so every experiment transmits the same data.
pub fn test_pattern(bits: usize, seed: u64) -> Vec<bool> {
    // xorshift64* — small, deterministic, no external dependency needed here.
    let mut state = seed.wrapping_mul(2685821657736338717).max(1);
    (0..bits)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1 == 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rate_and_bandwidth() {
        let sent = vec![true, false, true, true];
        let received = vec![true, true, true, false];
        let r = TransmissionReport::new(sent, received, Time::from_us(40));
        assert_eq!(r.bit_count(), 4);
        assert_eq!(r.error_count(), 2);
        assert!((r.error_rate() - 0.5).abs() < 1e-12);
        // 4 bits in 40 us -> 100 kbps.
        assert!((r.bandwidth_kbps() - 100.0).abs() < 1e-6);
        assert_eq!(r.time_per_bit(), Time::from_us(10));
    }

    #[test]
    fn empty_report_is_well_defined() {
        let r = TransmissionReport::new(vec![], vec![], Time::ZERO);
        assert_eq!(r.error_rate(), 0.0);
        assert_eq!(r.bandwidth_kbps(), 0.0);
        assert_eq!(r.time_per_bit(), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = TransmissionReport::new(vec![true], vec![], Time::ZERO);
    }

    #[test]
    fn sample_stats_basics() {
        let s = SampleStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - 1.5811).abs() < 1e-3);
        assert!(s.ci95_low() < 3.0 && s.ci95_high() > 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn single_sample_has_zero_ci() {
        let s = SampleStats::from_samples(&[7.5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width, 0.0);
        assert_eq!(s.mean, 7.5);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = SampleStats::from_samples(&[]);
    }

    #[test]
    fn zero_duration_reports_are_finite_zeros() {
        // A degenerate point (instant "transmission") must stream as valid
        // JSON numbers: 0.0, never NaN or infinity, from every rate metric.
        let sent = vec![true, false, true];
        let r = TransmissionReport::new(sent.clone(), sent, Time::ZERO);
        assert_eq!(r.bandwidth_kbps(), 0.0);
        assert_eq!(r.goodput_kbps(), 0.0);
        assert_eq!(r.residual_ber(), 0.0);
        assert!(r.bandwidth_kbps().is_finite());
        assert!(r.goodput_kbps().is_finite());
        assert!(r.residual_ber().is_finite());
    }

    #[test]
    fn zero_bit_reports_are_finite_zeros() {
        // No payload at all — including with a coding summary attached whose
        // frame size is itself zero — still yields finite zeros.
        let r =
            TransmissionReport::new(vec![], vec![], Time::from_us(5)).with_coding(CodingSummary {
                code: LinkCodeKind::None,
                code_rate: 1.0,
                frame_payload_bits: 0,
                wire_bits: 0,
                corrected_bits: 0,
                residual_errors: 0,
            });
        assert_eq!(r.bandwidth_kbps(), 0.0);
        assert_eq!(r.goodput_kbps(), 0.0);
        assert_eq!(r.residual_ber(), 0.0);
        assert_eq!(r.error_rate(), 0.0);
        assert!(r.goodput_kbps().is_finite() && r.residual_ber().is_finite());
        assert_eq!(r.time_per_bit(), Time::ZERO);
    }

    #[test]
    fn zero_frame_size_coding_summary_does_not_divide_by_zero() {
        let sent = vec![true, false, true, true];
        let r = TransmissionReport::new(sent.clone(), sent, Time::from_us(40)).with_coding(
            CodingSummary {
                code: LinkCodeKind::None,
                code_rate: 1.0,
                frame_payload_bits: 0, // degenerate: clamped to 1-bit frames
                wire_bits: 4,
                corrected_bits: 0,
                residual_errors: 0,
            },
        );
        assert!(r.goodput_kbps().is_finite());
        assert!((r.goodput_kbps() - r.bandwidth_kbps()).abs() < 1e-9);
    }

    #[test]
    fn goodput_counts_only_intact_frames() {
        // Two 4-bit frames, one delivered dirty: only the clean frame's bits
        // count toward goodput.
        let sent = vec![true, false, true, true, false, false, true, false];
        let mut received = sent.clone();
        received[6] = !received[6];
        let report =
            TransmissionReport::new(sent, received, Time::from_us(80)).with_coding(CodingSummary {
                code: LinkCodeKind::None,
                code_rate: 1.0,
                frame_payload_bits: 4,
                wire_bits: 8,
                corrected_bits: 0,
                residual_errors: 0,
            });
        // 4 clean bits in 80 us -> 50 kbps; raw bandwidth counts all 8.
        assert!((report.goodput_kbps() - 50.0).abs() < 1e-9);
        assert!((report.bandwidth_kbps() - 100.0).abs() < 1e-9);
        assert!((report.residual_ber() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn goodput_without_coding_treats_payload_as_one_frame() {
        let sent = vec![true; 10];
        let clean = TransmissionReport::new(sent.clone(), sent.clone(), Time::from_us(10));
        assert!((clean.goodput_kbps() - clean.bandwidth_kbps()).abs() < 1e-9);
        let mut received = sent.clone();
        received[0] = false;
        let dirty = TransmissionReport::new(sent, received, Time::from_us(10));
        assert_eq!(dirty.goodput_kbps(), 0.0);
    }

    #[test]
    fn test_pattern_is_deterministic_and_balanced() {
        let a = test_pattern(1000, 42);
        let b = test_pattern(1000, 42);
        let c = test_pattern(1000, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let ones = a.iter().filter(|&&x| x).count();
        assert!(
            ones > 350 && ones < 650,
            "pattern should be roughly balanced: {ones}"
        );
    }
}
