//! The adaptive transceiver: the closed loop around the shared engine.
//!
//! [`AdaptiveTransceiver`] re-chunks a payload into *adaptation windows*
//! and drives each window through the ordinary
//! [`Transceiver`] with the [`LinkSetting`] the
//! [`LinkController`] currently holds — the engine hook that applies a new
//! code and symbol-repeat factor *between* windows without tearing the
//! channel down. After every window the controller sees a
//! [`LinkObservation`] (residual BER, retransmissions, corrected bits,
//! achieved goodput) and may move the setting; the per-window history is
//! recorded as an [`AdaptationTrace`] on the final report.

use super::{LinkAction, LinkController, LinkObservation, LinkSetting};
use crate::channel::engine::{CovertChannel, LinkStats, Transceiver, TransceiverConfig};
use crate::error::ChannelError;
use crate::metrics::{
    AdaptationSummary, AdaptationTrace, CodingSummary, TransmissionReport, WindowRecord,
};
use soc_sim::clock::Time;
use soc_sim::events::{EventLayer, EventSink};
use soc_sim::telemetry::{Counter, Histogram, Registry, Span};

/// Configuration of the adaptive transceiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Payload bits per adaptation window (the controller's clock tick,
    /// and the per-window frame size). Floored at 16 bits.
    pub window_bits: usize,
    /// The engine configuration every window runs with, apart from the
    /// controller-owned axes (`code`, `symbol_repeat`). Forced to framed
    /// mode — the adaptation loop needs frame boundaries for feedback.
    pub base: TransceiverConfig,
}

impl AdaptiveConfig {
    /// The defaults the reproduction uses: 64-bit windows (one engine frame
    /// per window, the fastest control clock the framing allows) over the
    /// paper-default framed engine.
    pub fn paper_default() -> Self {
        AdaptiveConfig {
            window_bits: 64,
            base: TransceiverConfig::paper_default(),
        }
    }

    /// Replaces the window size.
    pub fn with_window_bits(mut self, bits: usize) -> Self {
        self.window_bits = bits;
        self
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Cached telemetry handles of the adaptation loop: the registry itself
/// (threaded into each window's engine and the controller), the
/// `adapt.rung_switches` counter, and the `phase.adapt_ns` bookkeeping
/// histogram.
#[derive(Debug, Clone)]
struct AdaptTelemetry {
    registry: Registry,
    rung_switches: Counter,
    adapt_ns: Histogram,
}

/// Closed-loop wrapper around the shared [`Transceiver`] engine: one
/// controller, one channel, windows applied back to back on the channel's
/// own clock.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveTransceiver {
    config: AdaptiveConfig,
    telemetry: Option<AdaptTelemetry>,
    events: Option<EventSink>,
}

impl AdaptiveTransceiver {
    /// An adaptive transceiver with an explicit configuration.
    pub fn new(config: AdaptiveConfig) -> Self {
        AdaptiveTransceiver {
            config,
            telemetry: None,
            events: None,
        }
    }

    /// Attaches the adaptation loop to a telemetry registry: applied
    /// setting changes count on `adapt.rung_switches`, the per-window
    /// controller bookkeeping time feeds `phase.adapt_ns`, and the
    /// registry is threaded into every window's engine (`link.*`,
    /// `phase.simulate_ns`, `phase.classify_ns`) and into the controller
    /// ([`LinkController::attach_telemetry`]).
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.telemetry = Some(AdaptTelemetry {
            registry: registry.clone(),
            rung_switches: registry.counter("adapt.rung_switches"),
            adapt_ns: registry.histogram("phase.adapt_ns"),
        });
        self
    }

    /// Attaches the adaptation loop to a timeline sink: every window
    /// becomes an `adapt`-track duration event, applied setting changes
    /// become `rung_switch` instants at the window boundary they take
    /// effect on, the sink is threaded into every window's engine (`link`
    /// track, on the same continuous clock) and into the controller
    /// ([`LinkController::attach_events`]). Purely observational.
    #[must_use]
    pub fn with_events(mut self, sink: &EventSink) -> Self {
        self.events = Some(sink.clone());
        self
    }

    /// The configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Payload bits of a window run under `setting`. Deliberately *not*
    /// shrunk at high repeat factors: a smaller payload does not shrink a
    /// Reed–Solomon frame below one codeword, so "constant-airtime"
    /// windows would pay the full codeword's wire bits for a fraction of
    /// its payload — tripling the cost of exactly the rung the link
    /// retreats to when the channel is at its worst.
    fn window_payload_bits(&self, window_bits: usize, _setting: LinkSetting) -> usize {
        window_bits.max(16)
    }

    /// The engine configuration a window runs with under `setting`.
    fn window_engine(
        &self,
        setting: LinkSetting,
        window_bits: usize,
        first_window: bool,
    ) -> TransceiverConfig {
        let mut config = self.config.base;
        config.framed = true;
        config.code = setting.code;
        config.symbol_repeat = setting.symbol_repeat.max(1);
        // One frame per window: the window is the retransmission and
        // feedback granularity.
        config.frame_payload_bits = self.window_payload_bits(window_bits, setting);
        if !first_window {
            // Warm-up is a channel property, not a window property: only
            // the first window pays it.
            config.warmup_symbols = 0;
        }
        config
    }

    /// Moves `payload` over `channel`, adapting the link setting between
    /// windows as directed by `controller`, and assembles a report whose
    /// [`AdaptationSummary`] records the per-window history.
    ///
    /// # Errors
    ///
    /// Propagates calibration and protocol errors from the channel, exactly
    /// like [`Transceiver::transmit_detailed`].
    pub fn transmit<C: CovertChannel + ?Sized>(
        &self,
        channel: &mut C,
        controller: &mut dyn LinkController,
        payload: &[bool],
    ) -> Result<(TransmissionReport, LinkStats), ChannelError> {
        // The configured window size is honoured as given (floored at 16
        // bits by `window_payload_bits`): the engine's frame size is
        // resized to the window anyway, so smaller control clocks than the
        // base frame are perfectly valid.
        let window_bits = self.config.window_bits.max(16);
        if let Some(telemetry) = &self.telemetry {
            controller.attach_telemetry(&telemetry.registry);
        }
        let events = self.events.as_ref().filter(|sink| sink.is_enabled());
        if let Some(sink) = events {
            controller.attach_events(sink);
        }
        let mut setting = clamp_setting(controller.initial());
        let mut sent = Vec::with_capacity(payload.len());
        let mut received = Vec::with_capacity(payload.len());
        let mut elapsed = Time::ZERO;
        let mut totals = LinkStats::default();
        let mut wire_bits = 0usize;
        let mut residual_errors = 0usize;
        let mut trace = AdaptationTrace::default();

        let mut cursor = 0usize;
        let mut index = 0usize;
        let mut previous_setting: Option<LinkSetting> = None;
        while cursor < payload.len() {
            let end = (cursor + self.window_payload_bits(window_bits, setting)).min(payload.len());
            let window = &payload[cursor..end];
            cursor = end;
            // Count only switches that take effect on a window (matching
            // the trace's adjacent-window accounting): a controller move
            // after the final window changes nothing on the wire.
            let switched = previous_setting.is_some_and(|prev| prev != setting);
            if let Some(telemetry) = &self.telemetry {
                if switched {
                    telemetry.rung_switches.incr();
                }
            }
            if let Some(sink) = events {
                if switched {
                    sink.instant(
                        EventLayer::Adapt,
                        "rung_switch",
                        elapsed,
                        vec![
                            ("from", previous_setting.expect("switched").label().into()),
                            ("to", setting.label().into()),
                            ("window", index.into()),
                        ],
                    );
                }
            }
            previous_setting = Some(setting);
            let mut engine = Transceiver::new(self.window_engine(setting, window_bits, index == 0));
            if let Some(telemetry) = &self.telemetry {
                engine = engine.with_telemetry(&telemetry.registry);
            }
            if let Some(sink) = events {
                engine = engine.with_events(sink).with_event_base(elapsed);
            }
            let window_start = elapsed;
            let (report, stats) = engine.transmit_detailed(channel, window)?;
            // Everything after the window's transmission is adaptation
            // bookkeeping: observation assembly, trace recording and the
            // controller's decision.
            let _adapt = self
                .telemetry
                .as_ref()
                .map_or_else(Span::noop, |t| t.adapt_ns.span());
            let coding = report.coding.expect("framed engine attaches coding stats");
            elapsed += report.elapsed;
            wire_bits += coding.wire_bits;
            residual_errors += coding.residual_errors;
            totals.frames_sent += stats.frames_sent;
            totals.sync_failures += stats.sync_failures;
            totals.retransmissions += stats.retransmissions;
            totals.decode_failures += stats.decode_failures;
            totals.corrected_bits += stats.corrected_bits;

            let observation = LinkObservation {
                window_index: index,
                setting,
                payload_bits: window.len(),
                frames_sent: stats.frames_sent,
                residual_ber: report.residual_ber(),
                goodput_kbps: report.goodput_kbps(),
                retransmissions: stats.retransmissions,
                decode_failures: stats.decode_failures,
                corrected_bits: stats.corrected_bits,
                elapsed: report.elapsed,
            };
            trace.windows.push(WindowRecord {
                index,
                code: setting.code,
                symbol_repeat: setting.symbol_repeat,
                payload_bits: window.len(),
                wire_bits: coding.wire_bits,
                goodput_kbps: observation.goodput_kbps,
                residual_ber: observation.residual_ber,
                retransmissions: stats.retransmissions,
                corrected_bits: stats.corrected_bits,
                decode_failures: stats.decode_failures,
                elapsed: report.elapsed,
            });
            sent.extend_from_slice(&report.sent);
            received.extend_from_slice(&report.received);
            if let Some(sink) = events {
                sink.span(
                    EventLayer::Adapt,
                    "window",
                    window_start,
                    report.elapsed,
                    vec![
                        ("window", index.into()),
                        ("setting", setting.label().into()),
                        ("goodput_kbps", observation.goodput_kbps.into()),
                        ("residual_ber", observation.residual_ber.into()),
                        ("retransmissions", stats.retransmissions.into()),
                    ],
                );
            }

            if let LinkAction::Set(next) = controller.observe(&observation) {
                setting = clamp_setting(next);
            }
            index += 1;
        }

        let code_rate = if wire_bits == 0 {
            1.0
        } else {
            payload.len() as f64 / wire_bits as f64
        };
        let coding = CodingSummary {
            code: setting.code,
            code_rate,
            frame_payload_bits: self
                .config
                .base
                .frame_payload_bits
                .min(payload.len().max(1)),
            wire_bits,
            corrected_bits: totals.corrected_bits,
            residual_errors,
        };
        let summary = AdaptationSummary {
            policy: controller.name().to_string(),
            window_bits,
            switches: trace.switches(),
            final_code: setting.code,
            final_symbol_repeat: setting.symbol_repeat,
            rung_estimates: controller.rung_estimates(),
            trace,
        };
        let report = TransmissionReport::try_new(sent, received, elapsed)?
            .with_coding(coding)
            .with_adaptation(summary);
        Ok((report, totals))
    }
}

/// The transceiver-side zero-rate guard: whatever a controller returns, the
/// applied setting always has a repeat factor of at least 1.
fn clamp_setting(setting: LinkSetting) -> LinkSetting {
    LinkSetting::new(setting.code, setting.symbol_repeat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::policy::{FixedPolicy, ThresholdPolicy};
    use crate::channel::engine::{Calibration, ChannelDiagnostics, FrameResult};
    use crate::code::LinkCodeKind;
    use crate::metrics::test_pattern;

    /// A loopback channel whose noise turns on and off by *bit count*: bits
    /// sent while `noisy` returns true are flipped with a fixed stride —
    /// a deterministic stand-in for the phased-noise backend.
    struct PhasedLoopback {
        sent_bits: usize,
        noisy_between: (usize, usize),
        flip_every: usize,
    }

    impl PhasedLoopback {
        fn new(noisy_between: (usize, usize), flip_every: usize) -> Self {
            PhasedLoopback {
                sent_bits: 0,
                noisy_between,
                flip_every,
            }
        }
    }

    impl CovertChannel for PhasedLoopback {
        fn calibrate(&mut self) -> Result<Calibration, ChannelError> {
            Ok(Calibration {
                symbol_time: Time::from_us(1),
                quality: 10.0,
                detail: "phased loopback".into(),
            })
        }

        fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError> {
            let received = bits
                .iter()
                .map(|&b| {
                    self.sent_bits += 1;
                    let in_burst = self.sent_bits >= self.noisy_between.0
                        && self.sent_bits < self.noisy_between.1;
                    if in_burst && self.sent_bits.is_multiple_of(self.flip_every) {
                        !b
                    } else {
                        b
                    }
                })
                .collect();
            Ok(FrameResult {
                received,
                elapsed: Time::from_us(bits.len() as u64),
            })
        }

        fn nominal_symbol_time(&self) -> Time {
            Time::from_us(1)
        }

        fn diagnostics(&self) -> ChannelDiagnostics {
            ChannelDiagnostics {
                channel: "phased-loopback",
                backend: "none".into(),
                entries: vec![],
            }
        }
    }

    #[test]
    fn fixed_policy_reproduces_the_plain_engine_accounting() {
        let payload = test_pattern(256, 11);
        let mut channel = PhasedLoopback::new((0, 0), usize::MAX);
        let mut controller = FixedPolicy::new(LinkSetting::lightest());
        let (report, stats) = AdaptiveTransceiver::new(AdaptiveConfig::paper_default())
            .transmit(&mut channel, &mut controller, &payload)
            .unwrap();
        assert_eq!(report.bit_count(), 256);
        assert_eq!(report.error_count(), 0);
        let summary = report.adaptation.as_ref().expect("adaptation attached");
        assert_eq!(summary.policy, "fixed");
        assert_eq!(summary.switches, 0);
        assert_eq!(summary.trace.windows.len(), 4);
        assert_eq!(summary.trace.total_payload_bits(), 256);
        assert_eq!(stats.frames_sent, 4);
    }

    #[test]
    fn trace_accounting_sums_to_the_report_totals() {
        let payload = test_pattern(320, 3);
        let mut channel = PhasedLoopback::new((100, 260), 9);
        let mut controller = ThresholdPolicy::paper_default();
        let (report, _) = AdaptiveTransceiver::new(AdaptiveConfig::paper_default())
            .transmit(&mut channel, &mut controller, &payload)
            .unwrap();
        let summary = report.adaptation.as_ref().unwrap();
        assert_eq!(summary.trace.total_payload_bits(), report.bit_count());
        assert_eq!(
            summary.trace.total_wire_bits(),
            report.coding.unwrap().wire_bits
        );
        assert_eq!(summary.trace.total_elapsed(), report.elapsed);
        assert_eq!(
            summary.switches,
            summary.trace.switches(),
            "summary and trace must agree on switch count"
        );
    }

    #[test]
    fn threshold_controller_reacts_to_a_mid_payload_burst() {
        // Bits 150..600 on the wire are noisy; the controller starts light,
        // hardens inside the burst, and the trace records the movement.
        let payload = test_pattern(448, 5);
        let mut channel = PhasedLoopback::new((150, 600), 7);
        let mut controller = ThresholdPolicy::paper_default();
        let (report, _) = AdaptiveTransceiver::new(AdaptiveConfig::paper_default())
            .transmit(&mut channel, &mut controller, &payload)
            .unwrap();
        let summary = report.adaptation.as_ref().unwrap();
        assert!(summary.switches >= 1, "controller must move at least once");
        assert!(
            summary
                .trace
                .windows
                .iter()
                .any(|w| w.code != LinkCodeKind::None),
            "some window must run coded"
        );
        assert_eq!(summary.trace.windows[0].code, LinkCodeKind::None);
    }

    #[test]
    fn telemetry_counts_rung_switches_and_adapt_bookkeeping() {
        let registry = Registry::new();
        let payload = test_pattern(448, 5);
        let mut channel = PhasedLoopback::new((150, 600), 7);
        let mut controller = ThresholdPolicy::paper_default();
        let (report, stats) = AdaptiveTransceiver::new(AdaptiveConfig::paper_default())
            .with_telemetry(&registry)
            .transmit(&mut channel, &mut controller, &payload)
            .unwrap();
        let summary = report.adaptation.as_ref().unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("adapt.rung_switches"),
            Some(summary.switches as u64),
            "counter must agree with the recorded trace"
        );
        assert_eq!(
            snap.histogram("phase.adapt_ns").unwrap().count(),
            summary.trace.windows.len() as u64,
            "one bookkeeping span per window"
        );
        assert_eq!(
            snap.counter("link.frames_sent"),
            Some(stats.frames_sent as u64),
            "per-window engines must share the registry"
        );
    }

    #[test]
    fn window_engine_applies_setting_and_strips_later_warmups() {
        let adaptive = AdaptiveTransceiver::new(AdaptiveConfig::paper_default());
        let setting = LinkSetting::new(LinkCodeKind::rs_default(), 2);
        let first = adaptive.window_engine(setting, 64, true);
        assert_eq!(first.code, LinkCodeKind::rs_default());
        assert_eq!(first.symbol_repeat, 2);
        assert!(first.framed);
        assert_eq!(
            first.warmup_symbols,
            TransceiverConfig::paper_default().warmup_symbols
        );
        let later = adaptive.window_engine(setting, 64, false);
        assert_eq!(later.warmup_symbols, 0);
    }

    #[test]
    fn window_payload_keeps_the_codeword_granularity_at_every_repeat() {
        let adaptive = AdaptiveTransceiver::new(AdaptiveConfig::paper_default());
        let r1 = LinkSetting::new(LinkCodeKind::rs_default(), 1);
        let r3 = LinkSetting::new(LinkCodeKind::rs_default(), 3);
        // A 64-bit window is exactly one RS(12,8) codeword of data; the
        // heavy rung must keep that granularity, not shrink below it.
        assert_eq!(adaptive.window_payload_bits(64, r1), 64);
        assert_eq!(adaptive.window_payload_bits(64, r3), 64);
        assert_eq!(adaptive.window_payload_bits(4, r1), 16);
        let engine = adaptive.window_engine(r3, 64, false);
        assert_eq!(engine.frame_payload_bits, 64);
    }
}
