//! Closed-loop link control: run-time code/rate adaptation and full-duplex
//! TDD scheduling on top of any [`crate::channel::engine::CovertChannel`].
//!
//! The paper evaluates its channels at fixed operating points, and the
//! PR 2 link-code layer made the operating point *configurable* — but still
//! static for a whole transmission. The two ambient regimes the scenario
//! sweeps expose want opposite points: a quiet cell maximizes goodput with a
//! light code and short symbols, a contended cell needs Reed–Solomon and
//! stretched symbols. This module closes the loop:
//!
//! * [`LinkController`] observes per-window feedback ([`LinkObservation`]:
//!   residual BER, retransmissions, corrected bits, achieved goodput) and
//!   answers with a [`LinkAction`] — hold, or move to another
//!   [`LinkSetting`] (link code × symbol-repeat factor).
//! * Four policies ship: [`FixedPolicy`] (the static baseline),
//!   [`ThresholdPolicy`] (hysteresis bands on the residual error rate),
//!   [`AimdPolicy`] (probe faster settings on clean windows, back off
//!   multiplicatively on decode failures) and [`BanditPolicy`] (per-rung
//!   EWMA goodput estimates with UCB-style optimism — no probe/commit
//!   trials at all).
//! * [`AdaptiveTransceiver`] wraps the shared transceiver engine: it
//!   re-chunks the payload into adaptation windows, applies the
//!   controller's setting between windows, and records the per-window
//!   [`crate::metrics::AdaptationTrace`] on the report.
//! * [`DuplexScheduler`] runs two channels (one per direction) as
//!   interleaved TDD slots on the same controller clock, with
//!   demand-weighted slot allocation replacing strict turn-taking and
//!   quality-weighted allocation consuming the per-direction goodput
//!   estimates the controllers measure.

pub mod duplex;
pub mod policy;
pub mod transceiver;

pub use duplex::{
    DuplexConfig, DuplexReport, DuplexScheduler, SlotAllocation, SlotDirection, SlotRecord,
};
pub use policy::{AimdPolicy, BanditPolicy, FixedPolicy, ThresholdPolicy};
pub use transceiver::{AdaptiveConfig, AdaptiveTransceiver};

use crate::code::LinkCodeKind;
use soc_sim::clock::Time;

/// One operating point of the link: the forward-error-correction code and
/// the symbol-repeat factor (effective symbol time in nominal symbol times).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkSetting {
    /// Link code applied per frame.
    pub code: LinkCodeKind,
    /// Wire-symbol repetition factor (1 = nominal symbol time). Clamped to
    /// at least 1 wherever a setting is applied — no controller can select
    /// a zero-rate configuration.
    pub symbol_repeat: usize,
}

impl LinkSetting {
    /// The fastest (and most fragile) setting: uncoded, nominal symbols.
    pub fn lightest() -> Self {
        LinkSetting {
            code: LinkCodeKind::None,
            symbol_repeat: 1,
        }
    }

    /// A setting from parts, with the repeat factor clamped to at least 1.
    pub fn new(code: LinkCodeKind, symbol_repeat: usize) -> Self {
        LinkSetting {
            code,
            symbol_repeat: symbol_repeat.max(1),
        }
    }

    /// The shared robustness ladder the built-in policies walk, ordered
    /// from fastest/most fragile to slowest/most robust: uncoded →
    /// Hamming(7,4) → Reed–Solomon → Reed–Solomon at tripled symbol time.
    ///
    /// The ordering is by *protection*, not by rate (Hamming's rate, 0.57,
    /// is below Reed–Solomon's 0.67); the policies verify every move in
    /// goodput terms, so a rung that is a goodput valley between its
    /// neighbours on some channel is bounced off rather than settled in.
    /// Two codes are deliberately not rungs at all. CRC-8 is a trap: when
    /// flips are rare the uncoded rung beats its overhead, and when flips
    /// are common its detected errors become full-window retransmission
    /// storms that the correcting rungs simply repair in place — it loses
    /// on both sides of the regime it would be picked for. And the
    /// repeated rung jumps straight from x1 to x3 because even repeats add
    /// nothing: a 2-copy majority vote ties back to the first copy, so x2
    /// pays double airtime for x1 robustness.
    pub fn ladder() -> Vec<LinkSetting> {
        vec![
            LinkSetting::new(LinkCodeKind::None, 1),
            LinkSetting::new(LinkCodeKind::Hamming74, 1),
            LinkSetting::new(LinkCodeKind::rs_default(), 1),
            LinkSetting::new(LinkCodeKind::rs_default(), 3),
        ]
    }

    /// Nominal information rate of the setting: payload bits per wire
    /// symbol time. Strictly positive for every constructible setting.
    pub fn rate(&self) -> f64 {
        self.code.rate() / self.symbol_repeat.max(1) as f64
    }

    /// Compact label for reports (`none`, `rs(12,8,4) x3`, …).
    pub fn label(&self) -> String {
        if self.symbol_repeat <= 1 {
            self.code.label()
        } else {
            format!("{} x{}", self.code.label(), self.symbol_repeat)
        }
    }
}

impl Default for LinkSetting {
    fn default() -> Self {
        Self::lightest()
    }
}

/// Per-window feedback a [`LinkController`] observes: what the window ran
/// with and what the link layer measured while it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkObservation {
    /// Zero-based window index within the transmission.
    pub window_index: usize,
    /// The setting the window ran with.
    pub setting: LinkSetting,
    /// Payload bits attempted in the window.
    pub payload_bits: usize,
    /// Frames the engine moved in the window (retransmissions included).
    pub frames_sent: usize,
    /// Residual bit-error rate after decoding, over the window's payload.
    pub residual_ber: f64,
    /// Goodput achieved over the window (kb/s).
    pub goodput_kbps: f64,
    /// Frame retransmissions within the window.
    pub retransmissions: usize,
    /// Frame decodes that reported uncorrectable residual errors.
    pub decode_failures: usize,
    /// Bits the link-code decoder repaired.
    pub corrected_bits: usize,
    /// Simulated time the window took.
    pub elapsed: Time,
}

impl LinkObservation {
    /// Fraction of the window's frames that had to be retransmitted, in
    /// `[0, 1)` — the congestion signal detect-only codes produce when the
    /// error itself is corrected away by retrying.
    pub fn retransmission_rate(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.frames_sent as f64
        }
    }

    /// Whether the window completed without any sign of channel distress:
    /// no residual errors, no failed decodes, no retransmissions.
    pub fn is_clean(&self) -> bool {
        self.residual_ber <= 0.0 && self.decode_failures == 0 && self.retransmissions == 0
    }
}

/// A controller's verdict after observing one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkAction {
    /// Keep the current setting.
    Hold,
    /// Move to another setting starting with the next window.
    Set(LinkSetting),
}

/// A closed-loop link-control policy: observes one [`LinkObservation`] per
/// adaptation window and steers the [`LinkSetting`] the next window runs
/// with.
pub trait LinkController: Send {
    /// Short policy name for reports and sweep rows.
    fn name(&self) -> &'static str;

    /// The setting the first window runs with.
    fn initial(&self) -> LinkSetting;

    /// Observes a completed window and decides the next setting.
    fn observe(&mut self, observation: &LinkObservation) -> LinkAction;

    /// The controller's current estimate of the goodput (kb/s) its link can
    /// sustain right now, for controllers that maintain one (the bandit's
    /// EWMA of its operating rung). `None` means the controller has no
    /// standing model — quality-aware slot allocation falls back to pure
    /// demand weighting in that case.
    fn goodput_estimate(&self) -> Option<f64> {
        None
    }

    /// The controller's per-rung goodput model, recorded on the
    /// [`crate::metrics::AdaptationSummary`] at the end of a run. Empty for
    /// controllers without per-rung statistics.
    fn rung_estimates(&self) -> Vec<crate::metrics::RungEstimate> {
        Vec::new()
    }

    /// Attaches the controller's instruments to a telemetry registry
    /// (`adapt.*` counters — the bandit counts its regime-bank flips
    /// there). The default is a no-op for policies with no internal events
    /// worth counting.
    fn attach_telemetry(&mut self, registry: &soc_sim::telemetry::Registry) {
        let _ = registry;
    }

    /// Attaches the controller to a timeline sink (`adapt`-track events:
    /// the prober-based policies record probe starts, commits and reverts;
    /// the bandit records its regime flips). The default is a no-op for
    /// policies with no internal events worth timestamping.
    fn attach_events(&mut self, sink: &soc_sim::events::EventSink) {
        let _ = sink;
    }
}

/// The built-in policy families, as a compact configuration value the sweep
/// grids and the `repro` CLI pass around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Static setting for the whole transmission (the baseline).
    Fixed,
    /// Hysteresis bands on the residual error rate.
    Threshold,
    /// Additive-increase / multiplicative-decrease probing.
    Aimd,
    /// Goodput bandit: per-rung EWMA estimates with an optimism bonus,
    /// selecting the rung with the highest upper bound each window.
    Bandit,
}

impl PolicyKind {
    /// Every policy family, in report order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Fixed,
        PolicyKind::Threshold,
        PolicyKind::Aimd,
        PolicyKind::Bandit,
    ];

    /// Human-readable label, re-parseable by [`PolicyKind::parse`].
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Fixed => "fixed",
            PolicyKind::Threshold => "threshold",
            PolicyKind::Aimd => "aimd",
            PolicyKind::Bandit => "bandit",
        }
    }

    /// Parses a CLI label (`fixed`, `threshold`, `aimd`, `bandit`).
    ///
    /// # Errors
    ///
    /// Returns a message listing the known policies.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.trim().to_ascii_lowercase().as_str() {
            "fixed" => Ok(PolicyKind::Fixed),
            "threshold" => Ok(PolicyKind::Threshold),
            "aimd" => Ok(PolicyKind::Aimd),
            "bandit" => Ok(PolicyKind::Bandit),
            other => Err(format!(
                "unknown policy {other:?} (known policies: fixed, threshold, aimd, bandit)"
            )),
        }
    }

    /// Builds the controller this kind describes. `fixed_setting` is the
    /// operating point of the [`FixedPolicy`] baseline; the adaptive
    /// policies ignore it and start from their own initial rung.
    pub fn build(self, fixed_setting: LinkSetting) -> Box<dyn LinkController> {
        match self {
            PolicyKind::Fixed => Box::new(FixedPolicy::new(fixed_setting)),
            PolicyKind::Threshold => Box::new(ThresholdPolicy::paper_default()),
            PolicyKind::Aimd => Box::new(AimdPolicy::paper_default()),
            PolicyKind::Bandit => Box::new(BanditPolicy::paper_default()),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A fully-specified policy configuration: the family plus every knob its
/// constructor takes, as a plain value that can be parsed from a scenario
/// file, compared, validated *without* panicking, and built into a
/// [`LinkController`] on demand.
///
/// [`PolicyKind`] names a family and builds its paper-default calibration;
/// `PolicyParams` is the family *with explicit parameters* — what a
/// scenario's `policies` section defines when it wants a custom ladder or a
/// different band.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyParams {
    /// Static setting for the whole transmission.
    Fixed {
        /// The operating point the policy is pinned to.
        setting: LinkSetting,
    },
    /// Hysteresis bands on the residual error rate
    /// (see [`ThresholdPolicy::new`]).
    Threshold {
        /// Robustness ladder the policy walks.
        ladder: Vec<LinkSetting>,
        /// Residual-BER above which a window reads as distressed.
        raise_ber: f64,
        /// Residual-BER below which a window reads as clean.
        clear_ber: f64,
        /// Clean windows required before a descent probe.
        patience: usize,
    },
    /// Additive-increase / multiplicative-decrease probing
    /// (see [`AimdPolicy::new`]).
    Aimd {
        /// Robustness ladder the policy walks.
        ladder: Vec<LinkSetting>,
        /// Residual-BER above which a window reads as distressed.
        raise_ber: f64,
    },
    /// Goodput bandit with per-rung EWMA estimates
    /// (see [`BanditPolicy::new`]).
    Bandit {
        /// Robustness ladder the policy walks.
        ladder: Vec<LinkSetting>,
        /// Per-window decay of the evidence sums, in `(0, 1]`.
        decay: f64,
        /// Optimism coefficient (relative to the best current estimate).
        explore: f64,
    },
}

impl PolicyParams {
    /// The paper-default calibration of `kind` — the parameters
    /// [`PolicyKind::build`] uses, spelled out.
    pub fn paper_default(kind: PolicyKind) -> Self {
        match kind {
            PolicyKind::Fixed => PolicyParams::Fixed {
                setting: LinkSetting::lightest(),
            },
            PolicyKind::Threshold => PolicyParams::Threshold {
                ladder: LinkSetting::ladder(),
                raise_ber: 0.03,
                clear_ber: 0.004,
                patience: 2,
            },
            PolicyKind::Aimd => PolicyParams::Aimd {
                ladder: LinkSetting::ladder(),
                raise_ber: 0.03,
            },
            PolicyKind::Bandit => PolicyParams::Bandit {
                ladder: LinkSetting::ladder(),
                decay: 0.98,
                explore: 0.08,
            },
        }
    }

    /// The family these parameters configure.
    pub fn kind(&self) -> PolicyKind {
        match self {
            PolicyParams::Fixed { .. } => PolicyKind::Fixed,
            PolicyParams::Threshold { .. } => PolicyKind::Threshold,
            PolicyParams::Aimd { .. } => PolicyKind::Aimd,
            PolicyParams::Bandit { .. } => PolicyKind::Bandit,
        }
    }

    /// Checks the same invariants the policy constructors assert, as a
    /// `Result` — the messages match the constructor panic messages so a
    /// scenario-file error reads the same as a programming error would.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let ladder = match self {
            PolicyParams::Fixed { .. } => return Ok(()),
            PolicyParams::Threshold { ladder, .. }
            | PolicyParams::Aimd { ladder, .. }
            | PolicyParams::Bandit { ladder, .. } => ladder,
        };
        if ladder.is_empty() {
            return Err("ladder needs at least one setting".to_string());
        }
        match self {
            PolicyParams::Threshold {
                raise_ber,
                clear_ber,
                ..
            } => {
                if clear_ber > raise_ber {
                    return Err(format!(
                        "hysteresis band is inverted: clear {clear_ber} > raise {raise_ber}"
                    ));
                }
            }
            PolicyParams::Bandit { decay, explore, .. } => {
                if !(*decay > 0.0 && *decay <= 1.0) {
                    return Err("decay must be in (0, 1]".to_string());
                }
                if explore.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err("explore must be positive".to_string());
                }
            }
            PolicyParams::Fixed { .. } | PolicyParams::Aimd { .. } => {}
        }
        Ok(())
    }

    /// Builds the controller these parameters describe.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters — call [`PolicyParams::validate`] first
    /// when the values came from user input.
    pub fn build(&self) -> Box<dyn LinkController> {
        match self {
            PolicyParams::Fixed { setting } => Box::new(FixedPolicy::new(*setting)),
            PolicyParams::Threshold {
                ladder,
                raise_ber,
                clear_ber,
                patience,
            } => Box::new(ThresholdPolicy::new(
                ladder.clone(),
                *raise_ber,
                *clear_ber,
                *patience,
            )),
            PolicyParams::Aimd { ladder, raise_ber } => {
                Box::new(AimdPolicy::new(ladder.clone(), *raise_ber))
            }
            PolicyParams::Bandit {
                ladder,
                decay,
                explore,
            } => Box::new(BanditPolicy::new(ladder.clone(), *decay, *explore)),
        }
    }

    /// Deterministic one-line label carrying every parameter, for sweep-row
    /// keys and reports: two parameter sets collide only if they are equal.
    pub fn label(&self) -> String {
        let rungs = |ladder: &[LinkSetting]| {
            ladder
                .iter()
                .map(LinkSetting::label)
                .collect::<Vec<_>>()
                .join("/")
        };
        match self {
            PolicyParams::Fixed { setting } => format!("fixed[{}]", setting.label()),
            PolicyParams::Threshold {
                ladder,
                raise_ber,
                clear_ber,
                patience,
            } => format!(
                "threshold[raise={raise_ber},clear={clear_ber},patience={patience},ladder={}]",
                rungs(ladder)
            ),
            PolicyParams::Aimd { ladder, raise_ber } => {
                format!("aimd[raise={raise_ber},ladder={}]", rungs(ladder))
            }
            PolicyParams::Bandit {
                ladder,
                decay,
                explore,
            } => format!(
                "bandit[decay={decay},explore={explore},ladder={}]",
                rungs(ladder)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_spans_the_rate_range_and_never_hits_zero() {
        let ladder = LinkSetting::ladder();
        assert!(ladder.len() >= 3);
        assert_eq!(ladder[0], LinkSetting::lightest());
        // The ends are ordered by rate even though the middle rungs trade
        // rate for *different kinds* of robustness (Hamming for isolated
        // flips, Reed-Solomon for bursts).
        let first = ladder[0].rate();
        let last = ladder.last().unwrap().rate();
        assert!(first > 2.0 * last, "ladder must span a real rate range");
        for setting in &ladder {
            assert!(setting.rate() > 0.0, "{} has zero rate", setting.label());
            assert!(setting.symbol_repeat >= 1);
        }
    }

    #[test]
    fn setting_construction_clamps_the_repeat_factor() {
        let s = LinkSetting::new(LinkCodeKind::Crc8, 0);
        assert_eq!(s.symbol_repeat, 1);
        assert!(s.rate() > 0.0);
    }

    #[test]
    fn labels_cover_code_and_repeat() {
        assert_eq!(LinkSetting::lightest().label(), "none");
        assert_eq!(
            LinkSetting::new(LinkCodeKind::Hamming74, 3).label(),
            "hamming74 x3"
        );
    }

    #[test]
    fn policy_kind_labels_parse_back() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()), Ok(kind));
        }
        let err = PolicyKind::parse("genie").unwrap_err();
        assert!(err.contains("threshold") && err.contains("aimd"), "{err}");
    }

    #[test]
    fn policy_params_validate_mirrors_constructor_panics() {
        for kind in PolicyKind::ALL {
            let params = PolicyParams::paper_default(kind);
            assert_eq!(params.kind(), kind);
            assert_eq!(params.validate(), Ok(()));
            // The defaults build without panicking and report their family.
            assert_eq!(params.build().name(), kind.label());
        }
        let empty = PolicyParams::Aimd {
            ladder: Vec::new(),
            raise_ber: 0.03,
        };
        assert_eq!(
            empty.validate().unwrap_err(),
            "ladder needs at least one setting"
        );
        let inverted = PolicyParams::Threshold {
            ladder: LinkSetting::ladder(),
            raise_ber: 0.004,
            clear_ber: 0.03,
            patience: 2,
        };
        assert!(inverted
            .validate()
            .unwrap_err()
            .contains("hysteresis band is inverted"));
        let bad_decay = PolicyParams::Bandit {
            ladder: LinkSetting::ladder(),
            decay: 0.0,
            explore: 0.08,
        };
        assert_eq!(bad_decay.validate().unwrap_err(), "decay must be in (0, 1]");
        let bad_explore = PolicyParams::Bandit {
            ladder: LinkSetting::ladder(),
            decay: 0.98,
            explore: 0.0,
        };
        assert_eq!(
            bad_explore.validate().unwrap_err(),
            "explore must be positive"
        );
    }

    #[test]
    fn policy_params_labels_distinguish_parameter_sets() {
        let a = PolicyParams::paper_default(PolicyKind::Bandit);
        let b = PolicyParams::Bandit {
            ladder: LinkSetting::ladder(),
            decay: 0.9,
            explore: 0.08,
        };
        assert_ne!(a.label(), b.label());
        assert!(a.label().starts_with("bandit["), "{}", a.label());
        let fixed = PolicyParams::Fixed {
            setting: LinkSetting::new(LinkCodeKind::Hamming74, 2),
        };
        assert_eq!(fixed.label(), "fixed[hamming74 x2]");
    }

    #[test]
    fn observation_helpers_summarize_distress() {
        let clean = LinkObservation {
            window_index: 0,
            setting: LinkSetting::lightest(),
            payload_bits: 64,
            frames_sent: 1,
            residual_ber: 0.0,
            goodput_kbps: 100.0,
            retransmissions: 0,
            decode_failures: 0,
            corrected_bits: 0,
            elapsed: Time::from_us(1),
        };
        assert!(clean.is_clean());
        assert_eq!(clean.retransmission_rate(), 0.0);
        let dirty = LinkObservation {
            retransmissions: 2,
            frames_sent: 4,
            ..clean
        };
        assert!(!dirty.is_clean());
        assert!((dirty.retransmission_rate() - 0.5).abs() < 1e-12);
    }
}
