//! Full-duplex TDD scheduling over two one-way covert channels.
//!
//! The covert medium is half-duplex by construction — both directions
//! contend for the same shared cache sets and ring ports — so a duplex link
//! is built the way radio links build one: time-division duplexing. The
//! [`DuplexScheduler`] interleaves two [`CovertChannel`]s (one per
//! direction) as fixed-size slots on a common slot clock, which is the same
//! clock the adaptation layer uses for its windows.
//!
//! The scheduler's contribution over the old `bidirectional_chat` loop is
//! *demand-weighted* slot allocation: strict turn-taking reserves every
//! other slot for a direction whether or not it has traffic queued, and an
//! idle reserved slot still burns its airtime (the peer must keep the slot
//! boundary to stay synchronized — it cannot know nothing is coming). With
//! asymmetric backlogs ("KEY?" one way, a long reply the other) those idle
//! slots are pure waste; [`SlotAllocation::DemandWeighted`] hands every
//! slot to the direction with the larger remaining backlog and stops
//! scheduling a direction the moment it drains.
//!
//! [`SlotAllocation::QualityWeighted`] closes the remaining loop between
//! scheduling and adaptation: the per-direction controllers already measure
//! each link's quality, so a slot is granted by *expected payoff* — the
//! controller's goodput estimate × the remaining backlog — and a direction
//! whose link is mid-burst yields airtime instead of burning it on heavy
//! rungs, reclaiming it when its estimate recovers or the peer drains.

use super::{LinkAction, LinkController, LinkSetting};
use crate::adapt::policy::FixedPolicy;
use crate::channel::engine::{CovertChannel, LinkStats, Transceiver, TransceiverConfig};
use crate::error::ChannelError;
use crate::metrics::TransmissionReport;
use soc_sim::clock::Time;
use soc_sim::events::{EventLayer, EventSink};

/// How the scheduler assigns TDD slots to the two directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotAllocation {
    /// Strict turn-taking: slots alternate A, B, A, B. A direction with an
    /// empty queue still consumes its reserved slot (idle airtime) while
    /// the other direction has traffic — the pre-scheduler baseline.
    StrictAlternate,
    /// Each slot goes to the direction with the larger remaining backlog;
    /// a drained direction is skipped entirely.
    DemandWeighted,
    /// Each slot goes to the direction with the larger *expected payoff*:
    /// its controller's goodput estimate × its remaining backlog. A
    /// direction whose link is in a noise burst (low estimate) yields its
    /// airtime to the healthy direction instead of burning slot after slot
    /// on heavy rungs, and reclaims it when the peer drains or its own
    /// estimate recovers. Falls back to pure demand weighting until *both*
    /// controllers publish an estimate ([`super::LinkController::
    /// goodput_estimate`] — the bandit does; the trial-based policies keep
    /// no standing model).
    QualityWeighted,
}

/// Slots a backlogged direction may be passed over under
/// [`SlotAllocation::QualityWeighted`] before it is granted a probe slot
/// regardless of payoff (see the starvation guard in
/// [`DuplexScheduler::run_adaptive`]).
const STARVATION_PROBE_SLOTS: usize = 6;

/// Which direction a slot served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotDirection {
    /// The forward channel (first argument of [`DuplexScheduler::run`]).
    Forward,
    /// The reverse channel (second argument).
    Reverse,
}

impl SlotDirection {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SlotDirection::Forward => "forward",
            SlotDirection::Reverse => "reverse",
        }
    }
}

/// One TDD slot of a completed duplex run.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRecord {
    /// Zero-based slot index on the shared slot clock.
    pub index: usize,
    /// Direction the slot was reserved for.
    pub direction: SlotDirection,
    /// Payload bits moved in the slot (0 for an idle reserved slot).
    pub payload_bits: usize,
    /// Whether the slot was reserved but had no traffic to carry.
    pub idle: bool,
    /// Simulated airtime the slot consumed.
    pub elapsed: Time,
}

/// Configuration of the duplex scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplexConfig {
    /// Payload bits a direction may move per slot (the slot size, and the
    /// controller clock). Clamped to at least 1.
    pub slot_payload_bits: usize,
    /// Slot-assignment discipline.
    pub allocation: SlotAllocation,
    /// Engine configuration each slot runs with (framed mode is forced;
    /// per-direction controllers own the `code`/`symbol_repeat` axes).
    pub base: TransceiverConfig,
}

impl DuplexConfig {
    /// The defaults the reproduction uses: one 64-bit frame per slot,
    /// demand-weighted allocation, paper-default framed engine.
    pub fn paper_default() -> Self {
        DuplexConfig {
            slot_payload_bits: 64,
            allocation: SlotAllocation::DemandWeighted,
            base: TransceiverConfig::paper_default(),
        }
    }

    /// Replaces the allocation discipline.
    pub fn with_allocation(mut self, allocation: SlotAllocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Replaces the slot size.
    pub fn with_slot_bits(mut self, bits: usize) -> Self {
        self.slot_payload_bits = bits;
        self
    }
}

impl Default for DuplexConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Outcome of a duplex run: one report per direction plus the shared slot
/// history.
#[derive(Debug, Clone)]
pub struct DuplexReport {
    /// Forward-direction transmission report.
    pub forward: TransmissionReport,
    /// Reverse-direction transmission report.
    pub reverse: TransmissionReport,
    /// Forward-direction link statistics.
    pub forward_stats: LinkStats,
    /// Reverse-direction link statistics.
    pub reverse_stats: LinkStats,
    /// Every slot the scheduler granted, in slot-clock order.
    pub slots: Vec<SlotRecord>,
    /// Total simulated airtime across all slots (both directions plus idle
    /// reserved slots — the TDD medium is serial).
    pub elapsed: Time,
}

impl DuplexReport {
    /// Aggregate two-way goodput: clean payload bits of both directions
    /// over the *total* shared airtime, idle slots included. The figure of
    /// merit slot allocation is judged by.
    pub fn aggregate_goodput_kbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        let clean = self.forward.clean_bits() + self.reverse.clean_bits();
        clean as f64 / secs / 1_000.0
    }

    /// Number of idle reserved slots the run burned.
    pub fn idle_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.idle).count()
    }
}

/// Per-direction transmission state during a run.
struct DirectionState<'p> {
    payload: &'p [bool],
    cursor: usize,
    sent: Vec<bool>,
    received: Vec<bool>,
    elapsed: Time,
    stats: LinkStats,
    wire_bits: usize,
    residual_errors: usize,
    setting: LinkSetting,
    first_slot: bool,
}

impl<'p> DirectionState<'p> {
    fn new(payload: &'p [bool], setting: LinkSetting) -> Self {
        DirectionState {
            payload,
            cursor: 0,
            sent: Vec::with_capacity(payload.len()),
            received: Vec::with_capacity(payload.len()),
            elapsed: Time::ZERO,
            stats: LinkStats::default(),
            wire_bits: 0,
            residual_errors: 0,
            setting,
            first_slot: true,
        }
    }

    fn remaining(&self) -> usize {
        self.payload.len() - self.cursor
    }

    fn into_report(self, frame_payload_bits: usize) -> (TransmissionReport, LinkStats) {
        let coding = crate::metrics::CodingSummary {
            code: self.setting.code,
            code_rate: if self.wire_bits == 0 {
                1.0
            } else {
                self.sent.len() as f64 / self.wire_bits as f64
            },
            frame_payload_bits: frame_payload_bits.min(self.sent.len().max(1)),
            wire_bits: self.wire_bits,
            corrected_bits: self.stats.corrected_bits,
            residual_errors: self.residual_errors,
        };
        let report =
            TransmissionReport::new(self.sent, self.received, self.elapsed).with_coding(coding);
        (report, self.stats)
    }
}

/// The TDD scheduler: two one-way channels share the medium as interleaved
/// slots on one slot clock.
#[derive(Debug, Clone, Default)]
pub struct DuplexScheduler {
    config: DuplexConfig,
    events: Option<EventSink>,
}

impl DuplexScheduler {
    /// A scheduler with an explicit configuration.
    pub fn new(config: DuplexConfig) -> Self {
        DuplexScheduler {
            config,
            events: None,
        }
    }

    /// Attaches an event sink: the scheduler records one duplex-track span
    /// per slot grant (timestamped on the shared slot clock) plus
    /// starvation-probe instants, and threads the sink into the per-slot
    /// engines so their frames land on the link track. Purely
    /// observational — recording never changes slot allocation or timing.
    #[must_use]
    pub fn with_events(mut self, sink: &EventSink) -> Self {
        self.events = Some(sink.clone());
        self
    }

    /// The configuration.
    pub fn config(&self) -> &DuplexConfig {
        &self.config
    }

    /// Runs both directions to completion with static (lightest-setting)
    /// link control.
    ///
    /// # Errors
    ///
    /// Propagates channel errors from either direction.
    pub fn run<F, R>(
        &self,
        forward: &mut F,
        reverse: &mut R,
        forward_payload: &[bool],
        reverse_payload: &[bool],
    ) -> Result<DuplexReport, ChannelError>
    where
        F: CovertChannel + ?Sized,
        R: CovertChannel + ?Sized,
    {
        let mut ctrl_f = FixedPolicy::new(LinkSetting::new(
            self.config.base.code,
            self.config.base.symbol_repeat,
        ));
        let mut ctrl_r = ctrl_f.clone();
        self.run_adaptive(
            forward,
            reverse,
            forward_payload,
            reverse_payload,
            &mut ctrl_f,
            &mut ctrl_r,
        )
    }

    /// Runs both directions to completion, each steered by its own
    /// [`LinkController`] observing its own slots — the duplex form of the
    /// adaptation loop, sharing the slot clock.
    ///
    /// # Errors
    ///
    /// Propagates channel errors from either direction.
    #[allow(clippy::too_many_arguments)]
    pub fn run_adaptive<F, R>(
        &self,
        forward: &mut F,
        reverse: &mut R,
        forward_payload: &[bool],
        reverse_payload: &[bool],
        forward_controller: &mut dyn LinkController,
        reverse_controller: &mut dyn LinkController,
    ) -> Result<DuplexReport, ChannelError>
    where
        F: CovertChannel + ?Sized,
        R: CovertChannel + ?Sized,
    {
        let slot_bits = self.config.slot_payload_bits.max(1);
        let events = self.events.as_ref().filter(|sink| sink.is_enabled());
        let mut f = DirectionState::new(forward_payload, forward_controller.initial());
        let mut r = DirectionState::new(reverse_payload, reverse_controller.initial());
        let mut slots = Vec::new();
        let mut elapsed = Time::ZERO;
        let mut index = 0usize;
        // Last slot index each direction was *served* (quality weighting's
        // starvation guard reads these).
        let mut forward_served = 0usize;
        let mut reverse_served = 0usize;

        while f.remaining() > 0 || r.remaining() > 0 {
            let direction = match self.config.allocation {
                SlotAllocation::StrictAlternate => {
                    if index.is_multiple_of(2) {
                        SlotDirection::Forward
                    } else {
                        SlotDirection::Reverse
                    }
                }
                SlotAllocation::DemandWeighted => {
                    if f.remaining() >= r.remaining() {
                        SlotDirection::Forward
                    } else {
                        SlotDirection::Reverse
                    }
                }
                SlotAllocation::QualityWeighted => {
                    // Expected payoff of granting the slot: how much the
                    // direction still wants to move, times how fast its
                    // controller believes its link currently moves bits.
                    // Until both controllers have published an estimate
                    // (each needs at least one observed slot) the
                    // allocation is *pure* demand weighting — starvation
                    // probes included, since a backlog-only comparison
                    // has no stale estimate to refresh. Payoff ties
                    // (including the all-zero-estimate corner) also fall
                    // back to the backlog comparison, so a drained
                    // direction can never out-rank one with traffic.
                    //
                    // The starvation guard exists because a benched
                    // direction's estimate is *frozen* — its controller
                    // only learns from served slots. Without an
                    // occasional probe slot a direction benched for a
                    // noise burst would stay benched long after the burst
                    // passed (its stale mid-storm estimate keeps losing
                    // the payoff comparison), then drain alone into the
                    // next burst. The probe refreshes the estimate at a
                    // bounded cost: at worst one bad slot per
                    // `STARVATION_PROBE_SLOTS`.
                    let by_demand = if f.remaining() >= r.remaining() {
                        SlotDirection::Forward
                    } else {
                        SlotDirection::Reverse
                    };
                    match (
                        forward_controller.goodput_estimate(),
                        reverse_controller.goodput_estimate(),
                    ) {
                        (Some(fq), Some(rq)) => {
                            if f.remaining() > 0 && index - forward_served >= STARVATION_PROBE_SLOTS
                            {
                                if let Some(sink) = events {
                                    sink.instant(
                                        EventLayer::Duplex,
                                        "starvation_probe",
                                        elapsed,
                                        vec![
                                            ("slot", index.into()),
                                            ("direction", SlotDirection::Forward.label().into()),
                                        ],
                                    );
                                }
                                SlotDirection::Forward
                            } else if r.remaining() > 0
                                && index - reverse_served >= STARVATION_PROBE_SLOTS
                            {
                                if let Some(sink) = events {
                                    sink.instant(
                                        EventLayer::Duplex,
                                        "starvation_probe",
                                        elapsed,
                                        vec![
                                            ("slot", index.into()),
                                            ("direction", SlotDirection::Reverse.label().into()),
                                        ],
                                    );
                                }
                                SlotDirection::Reverse
                            } else {
                                let forward_payoff = f.remaining() as f64 * fq.max(0.0);
                                let reverse_payoff = r.remaining() as f64 * rq.max(0.0);
                                if forward_payoff > reverse_payoff {
                                    SlotDirection::Forward
                                } else if reverse_payoff > forward_payoff {
                                    SlotDirection::Reverse
                                } else {
                                    by_demand
                                }
                            }
                        }
                        _ => by_demand,
                    }
                }
            };
            // The TDD medium is serial: while one direction's slot runs,
            // the other direction's attacker clocks idle through the same
            // airtime, so a scheduled noise phase is *shared* weather —
            // which is exactly what quality-weighted allocation exploits
            // by lending a stormy direction's slots to the healthy peer
            // until the storm has passed.
            match direction {
                SlotDirection::Forward => forward_served = index,
                SlotDirection::Reverse => reverse_served = index,
            }
            let slot = match direction {
                SlotDirection::Forward => {
                    let slot = self.serve_slot(
                        forward,
                        &mut f,
                        forward_controller,
                        slot_bits,
                        index,
                        direction,
                        elapsed,
                        events,
                    )?;
                    reverse.advance_idle(slot.elapsed);
                    slot
                }
                SlotDirection::Reverse => {
                    let slot = self.serve_slot(
                        reverse,
                        &mut r,
                        reverse_controller,
                        slot_bits,
                        index,
                        direction,
                        elapsed,
                        events,
                    )?;
                    forward.advance_idle(slot.elapsed);
                    slot
                }
            };
            if let Some(sink) = events {
                sink.span(
                    EventLayer::Duplex,
                    "slot",
                    elapsed,
                    slot.elapsed,
                    vec![
                        ("slot", slot.index.into()),
                        ("direction", slot.direction.label().into()),
                        ("payload_bits", slot.payload_bits.into()),
                        ("idle", u64::from(slot.idle).into()),
                    ],
                );
            }
            elapsed += slot.elapsed;
            slots.push(slot);
            index += 1;
        }

        let (forward_report, forward_stats) = f.into_report(slot_bits);
        let (reverse_report, reverse_stats) = r.into_report(slot_bits);
        Ok(DuplexReport {
            forward: forward_report,
            reverse: reverse_report,
            forward_stats,
            reverse_stats,
            slots,
            elapsed,
        })
    }

    /// Serves one slot for one direction: either the next chunk of backlog,
    /// or — when the slot is reserved for a drained direction — an idle
    /// keep-alive frame whose airtime still counts. `at` is the shared
    /// slot-clock time the slot starts on, so the engine's link-track
    /// events line up with the duplex track.
    #[allow(clippy::too_many_arguments)]
    fn serve_slot<C: CovertChannel + ?Sized>(
        &self,
        channel: &mut C,
        state: &mut DirectionState<'_>,
        controller: &mut dyn LinkController,
        slot_bits: usize,
        index: usize,
        direction: SlotDirection,
        at: Time,
        events: Option<&EventSink>,
    ) -> Result<SlotRecord, ChannelError> {
        let mut engine_config = self.config.base;
        engine_config.framed = true;
        engine_config.code = state.setting.code;
        engine_config.symbol_repeat = state.setting.symbol_repeat.max(1);
        // One frame per slot: the slot is the retransmission, feedback and
        // goodput-accounting granularity (into_report records the same
        // size, so clean-bit chunks line up with slot boundaries).
        engine_config.frame_payload_bits = slot_bits;
        if !state.first_slot {
            engine_config.warmup_symbols = 0;
        }
        state.first_slot = false;
        let mut engine = Transceiver::new(engine_config);
        if let Some(sink) = events {
            engine = engine.with_events(sink).with_event_base(at);
        }

        if state.remaining() == 0 {
            // Idle reserved slot: the peer holds the slot boundary with an
            // alternating keep-alive pattern; nothing lands in the payload.
            let keepalive: Vec<bool> = (0..slot_bits).map(|i| i % 2 == 0).collect();
            let (report, _) = engine.transmit_detailed(channel, &keepalive)?;
            state.elapsed += report.elapsed;
            return Ok(SlotRecord {
                index,
                direction,
                payload_bits: 0,
                idle: true,
                elapsed: report.elapsed,
            });
        }

        let end = (state.cursor + slot_bits).min(state.payload.len());
        let chunk = &state.payload[state.cursor..end];
        state.cursor = end;
        let (report, stats) = engine.transmit_detailed(channel, chunk)?;
        let coding = report.coding.expect("framed engine attaches coding stats");
        state.elapsed += report.elapsed;
        state.wire_bits += coding.wire_bits;
        state.residual_errors += coding.residual_errors;
        state.stats.frames_sent += stats.frames_sent;
        state.stats.sync_failures += stats.sync_failures;
        state.stats.retransmissions += stats.retransmissions;
        state.stats.decode_failures += stats.decode_failures;
        state.stats.corrected_bits += stats.corrected_bits;

        let observation = super::LinkObservation {
            window_index: index,
            setting: state.setting,
            payload_bits: chunk.len(),
            frames_sent: stats.frames_sent,
            residual_ber: report.residual_ber(),
            goodput_kbps: report.goodput_kbps(),
            retransmissions: stats.retransmissions,
            decode_failures: stats.decode_failures,
            corrected_bits: stats.corrected_bits,
            elapsed: report.elapsed,
        };
        let elapsed = report.elapsed;
        state.sent.extend(report.sent);
        state.received.extend(report.received);
        if let LinkAction::Set(next) = controller.observe(&observation) {
            state.setting = LinkSetting::new(next.code, next.symbol_repeat);
        }
        Ok(SlotRecord {
            index,
            direction,
            payload_bits: chunk.len(),
            idle: false,
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::policy::ThresholdPolicy;
    use crate::channel::engine::{Calibration, ChannelDiagnostics, FrameResult};
    use crate::metrics::test_pattern;

    /// Perfect loopback with a per-bit airtime, for scheduler accounting
    /// tests without a simulator.
    struct Loopback;

    impl CovertChannel for Loopback {
        fn calibrate(&mut self) -> Result<Calibration, ChannelError> {
            Ok(Calibration {
                symbol_time: Time::from_us(1),
                quality: 10.0,
                detail: "loopback".into(),
            })
        }

        fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError> {
            Ok(FrameResult {
                received: bits.to_vec(),
                elapsed: Time::from_us(bits.len() as u64),
            })
        }

        fn nominal_symbol_time(&self) -> Time {
            Time::from_us(1)
        }

        fn diagnostics(&self) -> ChannelDiagnostics {
            ChannelDiagnostics {
                channel: "loopback",
                backend: "none".into(),
                entries: vec![],
            }
        }
    }

    #[test]
    fn both_directions_round_trip_and_slots_cover_the_payloads() {
        let fwd = test_pattern(96, 1);
        let rev = test_pattern(160, 2);
        let report = DuplexScheduler::new(DuplexConfig::paper_default())
            .run(&mut Loopback, &mut Loopback, &fwd, &rev)
            .unwrap();
        assert_eq!(report.forward.sent, fwd);
        assert_eq!(report.forward.received, fwd);
        assert_eq!(report.reverse.sent, rev);
        assert_eq!(report.reverse.received, rev);
        let carried: usize = report
            .slots
            .iter()
            .filter(|s| s.direction == SlotDirection::Forward)
            .map(|s| s.payload_bits)
            .sum();
        assert_eq!(carried, 96);
        let carried: usize = report
            .slots
            .iter()
            .filter(|s| s.direction == SlotDirection::Reverse)
            .map(|s| s.payload_bits)
            .sum();
        assert_eq!(carried, 160);
        assert!(report.aggregate_goodput_kbps() > 0.0);
    }

    #[test]
    fn demand_weighting_beats_strict_alternation_on_asymmetric_backlogs() {
        // 64 bits one way, 512 the other: strict alternation reserves (and
        // burns) idle slots for the drained short direction; demand
        // weighting hands them to the long one.
        let fwd = test_pattern(64, 3);
        let rev = test_pattern(512, 4);
        let strict = DuplexScheduler::new(
            DuplexConfig::paper_default().with_allocation(SlotAllocation::StrictAlternate),
        )
        .run(&mut Loopback, &mut Loopback, &fwd, &rev)
        .unwrap();
        let weighted = DuplexScheduler::new(DuplexConfig::paper_default())
            .run(&mut Loopback, &mut Loopback, &fwd, &rev)
            .unwrap();
        assert!(strict.idle_slots() > 0, "strict must burn idle slots");
        assert_eq!(weighted.idle_slots(), 0, "weighted must not idle");
        assert!(
            weighted.aggregate_goodput_kbps() > strict.aggregate_goodput_kbps(),
            "weighted {:.1} kb/s must beat strict {:.1} kb/s",
            weighted.aggregate_goodput_kbps(),
            strict.aggregate_goodput_kbps()
        );
        // Both still deliver everything intact.
        assert_eq!(strict.forward.error_count(), 0);
        assert_eq!(strict.reverse.error_count(), 0);
        assert_eq!(weighted.reverse.error_count(), 0);
    }

    #[test]
    fn adaptive_duplex_runs_per_direction_controllers_on_the_slot_clock() {
        let fwd = test_pattern(128, 5);
        let rev = test_pattern(128, 6);
        let mut ctrl_f = ThresholdPolicy::paper_default();
        let mut ctrl_r = ThresholdPolicy::paper_default();
        let report = DuplexScheduler::new(DuplexConfig::paper_default())
            .run_adaptive(
                &mut Loopback,
                &mut Loopback,
                &fwd,
                &rev,
                &mut ctrl_f,
                &mut ctrl_r,
            )
            .unwrap();
        assert_eq!(report.forward.error_count(), 0);
        assert_eq!(report.reverse.error_count(), 0);
        // A clean loopback keeps both controllers on the lightest rung.
        assert_eq!(ctrl_f.rung(), 0);
        assert_eq!(ctrl_r.rung(), 0);
    }

    /// A controller with a pinned goodput estimate, for allocation tests:
    /// holds the lightest setting like [`FixedPolicy`] but publishes
    /// whatever quality the test dictates.
    struct PinnedEstimate {
        estimate: Option<f64>,
    }

    impl LinkController for PinnedEstimate {
        fn name(&self) -> &'static str {
            "pinned"
        }

        fn initial(&self) -> LinkSetting {
            LinkSetting::lightest()
        }

        fn observe(&mut self, _observation: &super::super::LinkObservation) -> LinkAction {
            LinkAction::Hold
        }

        fn goodput_estimate(&self) -> Option<f64> {
            self.estimate
        }
    }

    #[test]
    fn quality_weighting_grants_early_airtime_to_the_healthier_direction() {
        // Equal backlogs, forward link believed 10x slower: every early
        // slot must go to the healthy reverse direction, with the degraded
        // forward direction served only once the payoffs cross (its
        // backlog, times its low quality, eventually exceeds the drained
        // peer's zero).
        let fwd = test_pattern(256, 9);
        let rev = test_pattern(256, 10);
        let mut slow = PinnedEstimate {
            estimate: Some(10.0),
        };
        let mut fast = PinnedEstimate {
            estimate: Some(100.0),
        };
        let report = DuplexScheduler::new(
            DuplexConfig::paper_default().with_allocation(SlotAllocation::QualityWeighted),
        )
        .run_adaptive(
            &mut Loopback,
            &mut Loopback,
            &fwd,
            &rev,
            &mut slow,
            &mut fast,
        )
        .unwrap();
        // Both payloads still arrive intact.
        assert_eq!(report.forward.received, fwd);
        assert_eq!(report.reverse.received, rev);
        // The healthy direction drains first: every reverse slot precedes
        // the last forward slot, and the first slots are all reverse.
        let first_forward = report
            .slots
            .iter()
            .position(|s| s.direction == SlotDirection::Forward)
            .expect("forward is eventually served");
        let reverse_slots = report
            .slots
            .iter()
            .filter(|s| s.direction == SlotDirection::Reverse && !s.idle)
            .count();
        assert_eq!(
            first_forward, reverse_slots,
            "the degraded direction must wait until the healthy one drains"
        );
    }

    #[test]
    fn quality_weighting_tracks_demand_when_qualities_match() {
        // Identical estimates: quality weighting must degenerate to demand
        // weighting — same slot schedule, no idle slots. (Backlogs close
        // enough that alternation serves both inside the starvation-probe
        // horizon; a larger skew would legitimately diverge there.)
        let fwd = test_pattern(256, 11);
        let rev = test_pattern(320, 12);
        let run = |allocation: SlotAllocation| {
            let mut ctrl_f = PinnedEstimate {
                estimate: Some(50.0),
            };
            let mut ctrl_r = PinnedEstimate {
                estimate: Some(50.0),
            };
            DuplexScheduler::new(DuplexConfig::paper_default().with_allocation(allocation))
                .run_adaptive(
                    &mut Loopback,
                    &mut Loopback,
                    &fwd,
                    &rev,
                    &mut ctrl_f,
                    &mut ctrl_r,
                )
                .unwrap()
        };
        let quality = run(SlotAllocation::QualityWeighted);
        let demand = run(SlotAllocation::DemandWeighted);
        assert_eq!(quality.idle_slots(), 0);
        let directions =
            |report: &DuplexReport| report.slots.iter().map(|s| s.direction).collect::<Vec<_>>();
        assert_eq!(directions(&quality), directions(&demand));
    }

    #[test]
    fn quality_weighting_without_estimates_falls_back_to_demand() {
        // Trial-based controllers publish no estimate; the allocator must
        // not starve either direction and must match demand weighting.
        let fwd = test_pattern(96, 13);
        let rev = test_pattern(320, 14);
        let mut ctrl_f = PinnedEstimate { estimate: None };
        let mut ctrl_r = PinnedEstimate {
            estimate: Some(80.0),
        };
        let report = DuplexScheduler::new(
            DuplexConfig::paper_default().with_allocation(SlotAllocation::QualityWeighted),
        )
        .run_adaptive(
            &mut Loopback,
            &mut Loopback,
            &fwd,
            &rev,
            &mut ctrl_f,
            &mut ctrl_r,
        )
        .unwrap();
        assert_eq!(report.forward.received, fwd);
        assert_eq!(report.reverse.received, rev);
        assert_eq!(report.idle_slots(), 0, "fallback is demand-weighted");
    }

    #[test]
    fn quality_weighting_with_real_bandit_controllers_delivers_both_ways() {
        use crate::adapt::policy::BanditPolicy;
        let fwd = test_pattern(192, 15);
        let rev = test_pattern(192, 16);
        let mut ctrl_f = BanditPolicy::paper_default();
        let mut ctrl_r = BanditPolicy::paper_default();
        let report = DuplexScheduler::new(
            DuplexConfig::paper_default().with_allocation(SlotAllocation::QualityWeighted),
        )
        .run_adaptive(
            &mut Loopback,
            &mut Loopback,
            &fwd,
            &rev,
            &mut ctrl_f,
            &mut ctrl_r,
        )
        .unwrap();
        assert_eq!(report.forward.error_count(), 0);
        assert_eq!(report.reverse.error_count(), 0);
        // After observed slots both bandits publish estimates, so the
        // quality path (not the fallback) served the tail of the run.
        assert!(ctrl_f.goodput_estimate().is_some());
        assert!(ctrl_r.goodput_estimate().is_some());
    }

    #[test]
    fn aggregate_goodput_counts_idle_airtime_against_the_link() {
        let fwd = test_pattern(64, 7);
        let rev = test_pattern(256, 8);
        let strict = DuplexScheduler::new(
            DuplexConfig::paper_default().with_allocation(SlotAllocation::StrictAlternate),
        )
        .run(&mut Loopback, &mut Loopback, &fwd, &rev)
        .unwrap();
        let idle_airtime: u64 = strict
            .slots
            .iter()
            .filter(|s| s.idle)
            .map(|s| s.elapsed.as_ps())
            .sum();
        assert!(idle_airtime > 0);
        let slot_airtime: u64 = strict.slots.iter().map(|s| s.elapsed.as_ps()).sum();
        assert_eq!(slot_airtime, strict.elapsed.as_ps());
    }
}
