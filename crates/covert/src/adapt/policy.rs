//! The built-in link-control policies.
//!
//! All three walk the shared [`LinkSetting::ladder`] — a robustness ladder
//! from the uncoded nominal-symbol setting to interleaved Reed–Solomon at
//! 3x symbol time — and differ only in *how* they move along it:
//!
//! * [`FixedPolicy`] never moves (the baseline every adaptive run is
//!   compared against);
//! * [`ThresholdPolicy`] steps one rung at a time, with a hysteresis band
//!   between its raise and clear thresholds so a window that is neither
//!   clearly bad nor clearly clean holds the current rung;
//! * [`AimdPolicy`] probes one rung lighter after every clean window and
//!   backs off multiplicatively (rung index doubles) on distress — the
//!   TCP-shaped response to a channel whose noise arrives in bursts.

use super::{LinkAction, LinkController, LinkObservation, LinkSetting};

/// Static baseline: holds one setting for the whole transmission.
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    setting: LinkSetting,
}

impl FixedPolicy {
    /// A fixed policy pinned to `setting`.
    pub fn new(setting: LinkSetting) -> Self {
        FixedPolicy { setting }
    }
}

impl Default for FixedPolicy {
    fn default() -> Self {
        FixedPolicy::new(LinkSetting::lightest())
    }
}

impl LinkController for FixedPolicy {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn initial(&self) -> LinkSetting {
        self.setting
    }

    fn observe(&mut self, _observation: &LinkObservation) -> LinkAction {
        LinkAction::Hold
    }
}

/// Decides whether a window showed enough channel distress to demand a more
/// robust setting: residual errors above `raise_ber`, or every decode
/// failing (nothing usable arrived at all).
///
/// Retransmissions alone are deliberately *not* distress: a window that
/// straddles a noise burst delivers its payload clean through a retry, and
/// on a slow channel whose windows are long relative to the bursts that
/// happens to most windows at the heavy rungs — treating it as distress
/// would wedge the policy at the most expensive setting permanently.
fn window_is_bad(observation: &LinkObservation, raise_ber: f64) -> bool {
    observation.residual_ber > raise_ber
        || (observation.decode_failures > 0
            && observation.decode_failures >= observation.frames_sent)
}

/// An in-flight descent probe: the rung the policy left and the goodput it
/// was achieving there.
#[derive(Debug, Clone, Copy)]
struct Probe {
    from_rung: usize,
    from_goodput: f64,
}

/// Windows a reverted probe blocks further descent probes for (doubled on
/// every consecutive revert, up to [`MAX_PROBE_COOLDOWN`]). Probing is how
/// the policies find lighter operating points, but a blown probe burns a
/// window of airtime at a setting the channel cannot carry — a policy
/// wedged at its optimum must probe *rarely*, not never.
const PROBE_COOLDOWN: usize = 3;

/// Upper bound of the exponential probe backoff.
const MAX_PROBE_COOLDOWN: usize = 16;

/// Shared descent-probe state of the adaptive policies: which probe is in
/// flight, how long until the next one may start, and how many rungs down
/// the next one aims.
///
/// Two refinements make probing affordable. **Exponential backoff**: every
/// consecutive goodput-revert doubles the cooldown, so a policy sitting at
/// its true optimum stops paying the probe tax; any distressed window
/// resets the backoff — a regime change means the old conclusion is stale.
/// **Probe deepening**: a probe that came back *clean but slower* is a
/// goodput valley, not noise (think CRC-8 sitting between Reed–Solomon and
/// the uncoded setting: lower rate than RS on a channel where its detected
/// errors force retransmissions) — the next probe aims one rung further
/// down to jump the valley instead of bouncing off it forever.
#[derive(Debug, Clone)]
struct Prober {
    probe: Option<Probe>,
    cooldown: usize,
    backoff: usize,
    depth: usize,
    /// A recent commit still on trial: `(windows_left, fallback_rung)`.
    trial: Option<(usize, usize)>,
}

/// Windows a committed probe stays on trial: distress inside this horizon
/// sends the policy straight back to the rung the probe came from (with the
/// probe backoff escalated), because the commit was bought with one lucky
/// window on a channel whose losses are bursty — a single clean window at
/// an uncoded setting says little on a link with a 40 % frame-loss floor.
const COMMIT_TRIAL_WINDOWS: usize = 3;

/// What the prober concluded from the window that just finished.
enum ProbeVerdict {
    /// No probe was in flight.
    Idle,
    /// The probed rung carries its weight: stay there.
    Commit,
    /// The probed rung is worse: return to `rung`.
    Revert(usize),
}

impl Prober {
    fn new() -> Self {
        Prober {
            probe: None,
            cooldown: 0,
            backoff: PROBE_COOLDOWN,
            depth: 1,
            trial: None,
        }
    }

    /// Handles a distressed window: aborts any in-flight probe or on-trial
    /// commit (returning the rung to fall back to) and resets the probing
    /// posture — for a genuine regime change both the backoff and the
    /// valley depth start over, while a failed trial escalates the backoff
    /// (the commit itself was the mistake, not the weather).
    fn on_bad_window(&mut self) -> Option<usize> {
        if let Some(probe) = self.probe.take() {
            // A probe blown by distress is still a failed probe: the
            // lighter rung cannot carry the channel right now, so probing
            // backs off exactly as it does after a goodput revert.
            self.depth = 1;
            self.cooldown = self.backoff;
            self.backoff = (self.backoff * 2).min(MAX_PROBE_COOLDOWN);
            self.trial = None;
            return Some(probe.from_rung);
        }
        if let Some((_, fallback)) = self.trial.take() {
            self.cooldown = self.backoff;
            self.backoff = (self.backoff * 2).min(MAX_PROBE_COOLDOWN);
            return Some(fallback);
        }
        self.depth = 1;
        self.backoff = PROBE_COOLDOWN;
        self.cooldown = 0;
        None
    }

    /// Judges an in-flight probe against the completed (non-distressed)
    /// window.
    ///
    /// A probe commits only if the lighter rung delivered at least ~90 % of
    /// the goodput the heavier rung was achieving — otherwise the lighter
    /// setting is objectively worse on this channel right now (its extra
    /// frame losses outweigh its lower overhead). This is what keeps a
    /// policy from abandoning Reed–Solomon on a channel whose *intrinsic*
    /// error floor makes light codes a goodput trap, while still letting
    /// it ride an uncoded link when the medium is genuinely clean.
    fn judge(&mut self, observation: &LinkObservation) -> ProbeVerdict {
        let Some(probe) = self.probe.take() else {
            self.cooldown = self.cooldown.saturating_sub(1);
            if let Some((left, fallback)) = self.trial.take() {
                // A calm window at the committed rung: the trial matures,
                // and a survived trial earns the probe budget back.
                if left > 1 {
                    self.trial = Some((left - 1, fallback));
                } else {
                    self.backoff = PROBE_COOLDOWN;
                }
            }
            return ProbeVerdict::Idle;
        };
        if observation.goodput_kbps >= 0.9 * probe.from_goodput {
            self.depth = 1;
            self.trial = Some((COMMIT_TRIAL_WINDOWS, probe.from_rung));
            ProbeVerdict::Commit
        } else {
            // Clean but slower: a valley. Aim deeper next time, and probe
            // less often.
            self.depth += 1;
            self.cooldown = self.backoff;
            self.backoff = (self.backoff * 2).min(MAX_PROBE_COOLDOWN);
            ProbeVerdict::Revert(probe.from_rung)
        }
    }

    /// Whether a new probe may start.
    fn ready(&self) -> bool {
        self.probe.is_none() && self.cooldown == 0
    }

    /// Starts a probe from `rung` (achieving `goodput`), returning the
    /// target rung.
    fn start(&mut self, rung: usize, goodput: f64) -> usize {
        self.probe = Some(Probe {
            from_rung: rung,
            from_goodput: goodput,
        });
        rung.saturating_sub(self.depth)
    }
}

/// An ascent on trial: the rung the policy climbed from and the goodput of
/// the distressed window that triggered the climb.
///
/// Distress says which *direction* to move; it does not say how far. On a
/// channel where the burst-optimal setting still drops some windows, every
/// rung "looks bad" during a burst and a distress-only ascent escalates
/// straight past the optimum to the most expensive rung. The climb trial
/// closes the loop with the same currency as the descent probes: the
/// heavier rung is adopted only if its first window actually *delivered
/// more* than the window that triggered the climb — otherwise the policy
/// drops back and tolerates the distress for [`CLIMB_COOLDOWN`] windows
/// before trying again.
#[derive(Debug, Clone, Copy)]
struct ClimbTrial {
    from_rung: usize,
    from_goodput: f64,
}

/// Windows a failed climb trial suppresses further distress-driven climbs.
const CLIMB_COOLDOWN: usize = 3;

/// Hysteresis-band policy: distressed windows (residual error rate past
/// `raise_ber`) trigger a goodput-verified climb, `patience` consecutive
/// windows below `clear_ber` trigger a goodput-verified descent probe, and
/// windows inside the band hold the rung and reset the clean streak — the
/// hysteresis that keeps the policy from oscillating on borderline noise.
#[derive(Debug, Clone)]
pub struct ThresholdPolicy {
    ladder: Vec<LinkSetting>,
    rung: usize,
    raise_ber: f64,
    clear_ber: f64,
    patience: usize,
    clean_streak: usize,
    prober: Prober,
    climb: Option<ClimbTrial>,
    climb_cooldown: usize,
}

impl ThresholdPolicy {
    /// The calibration the reproduction uses over 64-bit windows: raise
    /// above 3 % residual BER (a window of 64 bits quantizes one flip to
    /// ~1.6 %, so the raise band means "two or more flips"), clear below
    /// 0.4 %, two clean windows of patience before a descent probe.
    pub fn paper_default() -> Self {
        ThresholdPolicy::new(LinkSetting::ladder(), 0.03, 0.004, 2)
    }

    /// A policy over an explicit ladder and band.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty or the band is inverted
    /// (`clear_ber > raise_ber`).
    pub fn new(ladder: Vec<LinkSetting>, raise_ber: f64, clear_ber: f64, patience: usize) -> Self {
        assert!(!ladder.is_empty(), "ladder needs at least one setting");
        assert!(
            clear_ber <= raise_ber,
            "hysteresis band is inverted: clear {clear_ber} > raise {raise_ber}"
        );
        ThresholdPolicy {
            ladder,
            rung: 0,
            raise_ber,
            clear_ber,
            patience: patience.max(1),
            clean_streak: 0,
            prober: Prober::new(),
            climb: None,
            climb_cooldown: 0,
        }
    }

    /// The rung the policy currently sits on.
    pub fn rung(&self) -> usize {
        self.rung
    }
}

impl LinkController for ThresholdPolicy {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn initial(&self) -> LinkSetting {
        self.ladder[self.rung]
    }

    fn observe(&mut self, observation: &LinkObservation) -> LinkAction {
        // An ascent on trial is judged first, on pure goodput: the heavier
        // rung must beat the window that triggered the climb or the policy
        // drops back and tolerates the distress for a while.
        if let Some(trial) = self.climb.take() {
            if observation.goodput_kbps <= trial.from_goodput {
                self.rung = trial.from_rung;
                self.climb_cooldown = CLIMB_COOLDOWN;
                self.clean_streak = 0;
                return LinkAction::Set(self.ladder[self.rung]);
            }
        }
        self.climb_cooldown = self.climb_cooldown.saturating_sub(1);
        if window_is_bad(observation, self.raise_ber) {
            self.clean_streak = 0;
            // A distressed probe window only *reverts* — the distress was
            // measured at the probed rung, so it says nothing about
            // whether the rung the probe left still copes. If the weather
            // really changed, the next window (back at that rung) will be
            // bad too and the climb happens one window later.
            if let Some(from) = self.prober.on_bad_window() {
                self.rung = from;
                return LinkAction::Set(self.ladder[self.rung]);
            }
            if self.rung + 1 < self.ladder.len() && self.climb_cooldown == 0 {
                self.climb = Some(ClimbTrial {
                    from_rung: self.rung,
                    from_goodput: observation.goodput_kbps,
                });
                self.rung += 1;
                return LinkAction::Set(self.ladder[self.rung]);
            }
            return LinkAction::Hold;
        }
        match self.prober.judge(observation) {
            ProbeVerdict::Commit => {
                // The lighter rung carries its weight.
                self.clean_streak = 0;
                return LinkAction::Hold;
            }
            ProbeVerdict::Revert(from) => {
                self.rung = from;
                self.clean_streak = 0;
                return LinkAction::Set(self.ladder[self.rung]);
            }
            ProbeVerdict::Idle => {}
        }
        // The descent gate is the residual error rate alone — NOT freedom
        // from retransmissions. A heavy rung whose windows straddle noise
        // bursts delivers clean payloads *through* retries forever; holding
        // the descent hostage to retry-free windows would wedge the policy
        // at the most expensive setting permanently.
        if observation.residual_ber <= self.clear_ber {
            self.clean_streak += 1;
            if self.clean_streak >= self.patience && self.rung > 0 && self.prober.ready() {
                self.clean_streak = 0;
                self.rung = self.prober.start(self.rung, observation.goodput_kbps);
                return LinkAction::Set(self.ladder[self.rung]);
            }
            return LinkAction::Hold;
        }
        // Inside the band: hold, and require the streak to restart.
        self.clean_streak = 0;
        LinkAction::Hold
    }
}

/// Additive-increase / multiplicative-decrease policy: undistressed
/// windows probe one rung lighter (additive increase of the information
/// rate, committed only when the probe matches the heavier rung's
/// goodput); any distressed window doubles the rung index on a climb
/// trial (multiplicative decrease), jumping most of the way to the heavy
/// end of the ladder in one or two windows — the right shape when noise
/// arrives as bursts that would eat several windows of one-rung stepping.
#[derive(Debug, Clone)]
pub struct AimdPolicy {
    ladder: Vec<LinkSetting>,
    rung: usize,
    raise_ber: f64,
    prober: Prober,
    climb: Option<ClimbTrial>,
    climb_cooldown: usize,
}

impl AimdPolicy {
    /// The calibration the reproduction uses: the default ladder, starting
    /// light, with distress meaning two or more residual flips in a 64-bit
    /// window (3 %) or a retransmission storm.
    pub fn paper_default() -> Self {
        AimdPolicy::new(LinkSetting::ladder(), 0.03)
    }

    /// A policy over an explicit ladder.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty.
    pub fn new(ladder: Vec<LinkSetting>, raise_ber: f64) -> Self {
        assert!(!ladder.is_empty(), "ladder needs at least one setting");
        AimdPolicy {
            ladder,
            rung: 0,
            raise_ber,
            prober: Prober::new(),
            climb: None,
            climb_cooldown: 0,
        }
    }

    /// The rung the policy currently sits on.
    pub fn rung(&self) -> usize {
        self.rung
    }
}

impl LinkController for AimdPolicy {
    fn name(&self) -> &'static str {
        "aimd"
    }

    fn initial(&self) -> LinkSetting {
        self.ladder[self.rung]
    }

    fn observe(&mut self, observation: &LinkObservation) -> LinkAction {
        let top = self.ladder.len() - 1;
        // An ascent on trial is judged on pure goodput, like the threshold
        // policy's.
        if let Some(trial) = self.climb.take() {
            if observation.goodput_kbps <= trial.from_goodput {
                self.rung = trial.from_rung;
                self.climb_cooldown = CLIMB_COOLDOWN;
                return LinkAction::Set(self.ladder[self.rung]);
            }
        }
        self.climb_cooldown = self.climb_cooldown.saturating_sub(1);
        if window_is_bad(observation, self.raise_ber) {
            // A blown probe only reverts (see ThresholdPolicy::observe).
            if let Some(from) = self.prober.on_bad_window() {
                self.rung = from;
                return LinkAction::Set(self.ladder[self.rung]);
            }
            // Multiplicative decrease of the rate: double the rung index
            // (from the lightest rung, step to 1 first), on trial.
            let next = (self.rung * 2).max(self.rung + 1).min(top);
            if next == self.rung || self.climb_cooldown > 0 {
                return LinkAction::Hold;
            }
            self.climb = Some(ClimbTrial {
                from_rung: self.rung,
                from_goodput: observation.goodput_kbps,
            });
            self.rung = next;
            return LinkAction::Set(self.ladder[self.rung]);
        }
        match self.prober.judge(observation) {
            ProbeVerdict::Commit => return LinkAction::Hold,
            ProbeVerdict::Revert(from) => {
                self.rung = from;
                return LinkAction::Set(self.ladder[self.rung]);
            }
            ProbeVerdict::Idle => {}
        }
        // Any window that was not distressed is a probing opportunity —
        // AIMD is the aggressive prober (see ThresholdPolicy for why the
        // gate must not demand retry-free windows).
        if self.rung > 0 && self.prober.ready() {
            // Additive increase: probe lighter.
            self.rung = self.prober.start(self.rung, observation.goodput_kbps);
            return LinkAction::Set(self.ladder[self.rung]);
        }
        LinkAction::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::LinkCodeKind;
    use soc_sim::clock::Time;

    /// Ladder index of a setting (off-ladder settings count as rung 0).
    fn rung_of(setting: LinkSetting) -> usize {
        LinkSetting::ladder()
            .iter()
            .position(|s| *s == setting)
            .unwrap_or(0)
    }

    /// A synthetic observation mimicking the measured channel economics:
    /// clean windows get faster as the setting gets lighter, dirty windows
    /// deliver *something* — and more of it the more robust the setting —
    /// which is the gradient the goodput-verified climbs ratchet up.
    fn observe_synthetic(setting: LinkSetting, index: usize, dirty: bool) -> LinkObservation {
        let rung = rung_of(setting);
        LinkObservation {
            window_index: index,
            setting,
            payload_bits: 64,
            frames_sent: 1,
            residual_ber: if dirty { 0.05 } else { 0.0 },
            goodput_kbps: if dirty {
                5.0 + 10.0 * rung as f64
            } else {
                100.0 - rung as f64
            },
            retransmissions: 0,
            decode_failures: usize::from(dirty),
            corrected_bits: 0,
            elapsed: Time::from_us(10),
        }
    }

    /// Drives a controller against an environment where a window is dirty
    /// unless its setting is at least as robust as `clean_from` (ladder
    /// index), returning the settings each window ran with.
    fn drive(
        controller: &mut dyn LinkController,
        windows: usize,
        clean_from: usize,
    ) -> Vec<LinkSetting> {
        let ladder = LinkSetting::ladder();
        let mut setting = controller.initial();
        let mut history = Vec::new();
        for index in 0..windows {
            history.push(setting);
            // Settings off the ladder (a pinned FixedPolicy point) count as
            // robust enough: the environment only punishes light rungs.
            let rung = ladder
                .iter()
                .position(|s| *s == setting)
                .unwrap_or(usize::MAX);
            let dirty = rung < clean_from;
            if let LinkAction::Set(next) =
                controller.observe(&observe_synthetic(setting, index, dirty))
            {
                setting = next;
            }
        }
        history
    }

    #[test]
    fn fixed_policy_never_moves() {
        let pinned = LinkSetting::new(LinkCodeKind::Hamming74, 2);
        let mut policy = FixedPolicy::new(pinned);
        let history = drive(&mut policy, 10, usize::MAX);
        assert!(history.iter().all(|s| *s == pinned));
    }

    #[test]
    fn threshold_policy_climbs_under_sustained_noise_and_descends_in_quiet() {
        // Everything below Reed-Solomon (rung 2) is dirty: the policy must
        // climb there and spend most windows on an RS setting.
        let mut policy = ThresholdPolicy::paper_default();
        let history = drive(&mut policy, 32, 2);
        let first_rs = history
            .iter()
            .position(|s| matches!(s.code, LinkCodeKind::ReedSolomon { .. }))
            .expect("policy must reach RS");
        assert!(
            first_rs <= 4,
            "goodput-ratcheted climbing reaches RS quickly, took {first_rs}"
        );
        let rs_windows = history
            .iter()
            .filter(|s| matches!(s.code, LinkCodeKind::ReedSolomon { .. }))
            .count();
        assert!(
            rs_windows >= 20,
            "policy must spend most windows on RS (probes allowed), got {rs_windows}/32"
        );
        // A long all-clean stretch walks back to the lightest rung and
        // stays (probes from rung 0 cannot go lower).
        let mut policy = ThresholdPolicy::paper_default();
        let history = drive(&mut policy, 32, 0);
        assert_eq!(*history.last().unwrap(), LinkSetting::lightest());
        let light_windows = history
            .iter()
            .filter(|s| s.code == LinkCodeKind::None)
            .count();
        assert!(light_windows >= 24, "got {light_windows}/32 light windows");
    }

    #[test]
    fn aimd_policy_backs_off_multiplicatively_and_probes_additively() {
        let mut policy = AimdPolicy::paper_default();
        // Sustained noise below the top rung: AIMD must reach and mostly
        // hold a Reed-Solomon setting.
        let history = drive(&mut policy, 32, 2);
        let first_rs = history
            .iter()
            .position(|s| matches!(s.code, LinkCodeKind::ReedSolomon { .. }))
            .expect("AIMD must reach RS");
        assert!(
            first_rs <= 4,
            "doubling must reach RS quickly, took {first_rs}"
        );
        let rs_windows = history
            .iter()
            .filter(|s| matches!(s.code, LinkCodeKind::ReedSolomon { .. }))
            .count();
        assert!(rs_windows >= 16, "got {rs_windows}/32 RS windows");
        // Sustained quiet: returns to (and stays at) the lightest rung.
        let mut policy = AimdPolicy::paper_default();
        let history = drive(&mut policy, 24, 0);
        assert_eq!(*history.last().unwrap(), LinkSetting::lightest());
    }

    #[test]
    fn policies_clamp_at_both_ladder_ends_and_never_pick_zero_rate() {
        let ladder = LinkSetting::ladder();
        let top = *ladder.last().unwrap();
        let mut threshold = ThresholdPolicy::paper_default();
        let mut aimd = AimdPolicy::paper_default();
        // Everything is always dirty: both must saturate at the top rung
        // without stepping past it — and every setting along the way must
        // have a strictly positive rate.
        let mut t_setting = threshold.initial();
        let mut a_setting = aimd.initial();
        for index in 0..24 {
            for (policy, setting) in [
                (&mut threshold as &mut dyn LinkController, &mut t_setting),
                (&mut aimd, &mut a_setting),
            ] {
                if let LinkAction::Set(next) =
                    policy.observe(&observe_synthetic(*setting, index, true))
                {
                    *setting = next;
                }
                assert!(setting.rate() > 0.0, "zero-rate setting selected");
                assert!(setting.symbol_repeat >= 1);
            }
        }
        assert_eq!(t_setting, top);
        assert_eq!(a_setting, top);
        // Everything clean: both walk back and clamp at rung 0.
        for index in 0..32 {
            for (policy, setting) in [
                (&mut threshold as &mut dyn LinkController, &mut t_setting),
                (&mut aimd, &mut a_setting),
            ] {
                if let LinkAction::Set(next) =
                    policy.observe(&observe_synthetic(*setting, index, false))
                {
                    *setting = next;
                }
            }
        }
        assert_eq!(t_setting, LinkSetting::lightest());
        assert_eq!(a_setting, LinkSetting::lightest());
    }

    #[test]
    fn retransmission_recovery_is_not_distress_but_total_decode_failure_is() {
        // A window that delivered its payload clean *through* retries must
        // not trigger a climb — on slow channels whose windows straddle
        // noise bursts that is the steady state of the heavy rungs, and
        // treating it as distress would wedge the policy at the most
        // expensive setting (see `window_is_bad`).
        let mut policy = ThresholdPolicy::paper_default();
        let recovered = LinkObservation {
            window_index: 0,
            setting: LinkSetting::lightest(),
            payload_bits: 64,
            frames_sent: 3,
            residual_ber: 0.0,
            goodput_kbps: 40.0,
            retransmissions: 2,
            decode_failures: 1,
            corrected_bits: 0,
            elapsed: Time::from_us(30),
        };
        assert!(matches!(policy.observe(&recovered), LinkAction::Hold));
        assert_eq!(policy.rung(), 0);
        // A window where *every* decode failed is distress even with the
        // residual masked by best-effort acceptance.
        let hopeless = LinkObservation {
            frames_sent: 3,
            decode_failures: 3,
            goodput_kbps: 0.0,
            ..recovered
        };
        assert!(matches!(policy.observe(&hopeless), LinkAction::Set(_)));
        assert_eq!(policy.rung(), 1);
    }
}
