//! The built-in link-control policies.
//!
//! All of them walk the shared [`LinkSetting::ladder`] — a robustness ladder
//! from the uncoded nominal-symbol setting to interleaved Reed–Solomon at
//! 3x symbol time — and differ only in *how* they move along it:
//!
//! * [`FixedPolicy`] never moves (the baseline every adaptive run is
//!   compared against);
//! * [`ThresholdPolicy`] steps one rung at a time, with a hysteresis band
//!   between its raise and clear thresholds so a window that is neither
//!   clearly bad nor clearly clean holds the current rung;
//! * [`AimdPolicy`] probes one rung lighter after every clean window and
//!   backs off multiplicatively (rung index doubles) on distress — the
//!   TCP-shaped response to a channel whose noise arrives in bursts;
//! * [`BanditPolicy`] keeps a decayed per-rung EWMA of observed goodput and
//!   selects the rung with the highest optimism-adjusted estimate each
//!   window — every window is evidence, so it needs none of the
//!   probe/commit trial machinery the other two pay their probing tax on.

use super::{LinkAction, LinkController, LinkObservation, LinkSetting};
use crate::metrics::RungEstimate;
use soc_sim::clock::Time;
use soc_sim::events::{EventLayer, EventSink, FieldValue};

/// Adapt-track event recording shared by the policies.
///
/// The policies have no clock of their own — they only see one
/// [`LinkObservation`] per window — so the helper accumulates the windows'
/// `elapsed` into a cumulative link clock and stamps every probe / regime
/// event on it. The clock matches the window spans the adaptive
/// transceiver records, so probe events land inside the window that
/// triggered them on the shared timeline.
#[derive(Debug, Clone)]
struct PolicyEvents {
    sink: EventSink,
    clock: Time,
}

impl PolicyEvents {
    fn new(sink: &EventSink) -> Self {
        PolicyEvents {
            sink: sink.clone(),
            clock: Time::ZERO,
        }
    }

    /// Advances the link clock past the window under observation. Must be
    /// the first thing a policy's `observe` does, so every event emitted
    /// while judging the window lands at the window's end.
    fn tick(&mut self, observation: &LinkObservation) {
        self.clock += observation.elapsed;
    }

    fn instant(&self, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        self.sink
            .instant(EventLayer::Adapt, name, self.clock, fields);
    }
}

/// Static baseline: holds one setting for the whole transmission.
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    setting: LinkSetting,
}

impl FixedPolicy {
    /// A fixed policy pinned to `setting`.
    pub fn new(setting: LinkSetting) -> Self {
        FixedPolicy { setting }
    }
}

impl Default for FixedPolicy {
    fn default() -> Self {
        FixedPolicy::new(LinkSetting::lightest())
    }
}

impl LinkController for FixedPolicy {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn initial(&self) -> LinkSetting {
        self.setting
    }

    fn observe(&mut self, _observation: &LinkObservation) -> LinkAction {
        LinkAction::Hold
    }
}

/// Decides whether a window showed enough channel distress to demand a more
/// robust setting: residual errors above `raise_ber`, or every decode
/// failing (nothing usable arrived at all).
///
/// Retransmissions alone are deliberately *not* distress: a window that
/// straddles a noise burst delivers its payload clean through a retry, and
/// on a slow channel whose windows are long relative to the bursts that
/// happens to most windows at the heavy rungs — treating it as distress
/// would wedge the policy at the most expensive setting permanently.
fn window_is_bad(observation: &LinkObservation, raise_ber: f64) -> bool {
    observation.residual_ber > raise_ber
        || (observation.decode_failures > 0
            && observation.decode_failures >= observation.frames_sent)
}

/// An in-flight descent probe: the rung the policy left and the goodput it
/// was achieving there.
#[derive(Debug, Clone, Copy)]
struct Probe {
    from_rung: usize,
    from_goodput: f64,
}

/// Windows a reverted probe blocks further descent probes for (doubled on
/// every consecutive revert, up to [`MAX_PROBE_COOLDOWN`]). Probing is how
/// the policies find lighter operating points, but a blown probe burns a
/// window of airtime at a setting the channel cannot carry — a policy
/// wedged at its optimum must probe *rarely*, not never.
const PROBE_COOLDOWN: usize = 3;

/// Upper bound of the exponential probe backoff.
const MAX_PROBE_COOLDOWN: usize = 16;

/// Shared descent-probe state of the adaptive policies: which probe is in
/// flight, how long until the next one may start, and how many rungs down
/// the next one aims.
///
/// Two refinements make probing affordable. **Exponential backoff**: every
/// consecutive goodput-revert doubles the cooldown, so a policy sitting at
/// its true optimum stops paying the probe tax; any distressed window
/// resets the backoff — a regime change means the old conclusion is stale.
/// **Probe deepening**: a probe that came back *clean but slower* is a
/// goodput valley, not noise (think CRC-8 sitting between Reed–Solomon and
/// the uncoded setting: lower rate than RS on a channel where its detected
/// errors force retransmissions) — the next probe aims one rung further
/// down to jump the valley instead of bouncing off it forever.
#[derive(Debug, Clone)]
struct Prober {
    probe: Option<Probe>,
    cooldown: usize,
    backoff: usize,
    depth: usize,
    /// A recent commit still on trial: `(windows_left, fallback_rung)`.
    trial: Option<(usize, usize)>,
}

/// Windows a committed probe stays on trial: distress inside this horizon
/// sends the policy straight back to the rung the probe came from (with the
/// probe backoff escalated), because the commit was bought with one lucky
/// window on a channel whose losses are bursty — a single clean window at
/// an uncoded setting says little on a link with a 40 % frame-loss floor.
const COMMIT_TRIAL_WINDOWS: usize = 3;

/// What the prober concluded from the window that just finished.
enum ProbeVerdict {
    /// No probe was in flight.
    Idle,
    /// The probed rung carries its weight: stay there.
    Commit,
    /// The probed rung is worse: return to `rung`.
    Revert(usize),
}

impl Prober {
    fn new() -> Self {
        Prober {
            probe: None,
            cooldown: 0,
            backoff: PROBE_COOLDOWN,
            depth: 1,
            trial: None,
        }
    }

    /// Handles a distressed window: aborts any in-flight probe or on-trial
    /// commit (returning the rung to fall back to) and resets the probing
    /// posture — for a genuine regime change both the backoff and the
    /// valley depth start over, while a failed trial escalates the backoff
    /// (the commit itself was the mistake, not the weather).
    fn on_bad_window(&mut self) -> Option<usize> {
        if let Some(probe) = self.probe.take() {
            // A probe blown by distress is still a failed probe: the
            // lighter rung cannot carry the channel right now, so probing
            // backs off exactly as it does after a goodput revert.
            self.depth = 1;
            self.cooldown = self.backoff;
            self.backoff = (self.backoff * 2).min(MAX_PROBE_COOLDOWN);
            self.trial = None;
            return Some(probe.from_rung);
        }
        if let Some((_, fallback)) = self.trial.take() {
            self.cooldown = self.backoff;
            self.backoff = (self.backoff * 2).min(MAX_PROBE_COOLDOWN);
            return Some(fallback);
        }
        self.depth = 1;
        self.backoff = PROBE_COOLDOWN;
        self.cooldown = 0;
        None
    }

    /// Judges an in-flight probe against the completed (non-distressed)
    /// window.
    ///
    /// A probe commits only if the lighter rung delivered at least ~90 % of
    /// the goodput the heavier rung was achieving — otherwise the lighter
    /// setting is objectively worse on this channel right now (its extra
    /// frame losses outweigh its lower overhead). This is what keeps a
    /// policy from abandoning Reed–Solomon on a channel whose *intrinsic*
    /// error floor makes light codes a goodput trap, while still letting
    /// it ride an uncoded link when the medium is genuinely clean.
    fn judge(&mut self, observation: &LinkObservation) -> ProbeVerdict {
        let Some(probe) = self.probe.take() else {
            self.cooldown = self.cooldown.saturating_sub(1);
            if let Some((left, fallback)) = self.trial.take() {
                // A calm window at the committed rung: the trial matures,
                // and a survived trial earns the probe budget back.
                if left > 1 {
                    self.trial = Some((left - 1, fallback));
                } else {
                    self.backoff = PROBE_COOLDOWN;
                }
            }
            return ProbeVerdict::Idle;
        };
        if observation.goodput_kbps >= 0.9 * probe.from_goodput {
            self.depth = 1;
            self.trial = Some((COMMIT_TRIAL_WINDOWS, probe.from_rung));
            ProbeVerdict::Commit
        } else {
            // Clean but slower: a valley. Aim deeper next time, and probe
            // less often.
            self.depth += 1;
            self.cooldown = self.backoff;
            self.backoff = (self.backoff * 2).min(MAX_PROBE_COOLDOWN);
            ProbeVerdict::Revert(probe.from_rung)
        }
    }

    /// Whether a new probe may start.
    fn ready(&self) -> bool {
        self.probe.is_none() && self.cooldown == 0
    }

    /// Starts a probe from `rung` (achieving `goodput`), returning the
    /// target rung.
    fn start(&mut self, rung: usize, goodput: f64) -> usize {
        self.probe = Some(Probe {
            from_rung: rung,
            from_goodput: goodput,
        });
        rung.saturating_sub(self.depth)
    }
}

/// An ascent on trial: the rung the policy climbed from and the goodput of
/// the distressed window that triggered the climb.
///
/// Distress says which *direction* to move; it does not say how far. On a
/// channel where the burst-optimal setting still drops some windows, every
/// rung "looks bad" during a burst and a distress-only ascent escalates
/// straight past the optimum to the most expensive rung. The climb trial
/// closes the loop with the same currency as the descent probes: the
/// heavier rung is adopted only if its first window actually *delivered
/// more* than the window that triggered the climb — otherwise the policy
/// drops back and tolerates the distress for [`CLIMB_COOLDOWN`] windows
/// before trying again.
#[derive(Debug, Clone, Copy)]
struct ClimbTrial {
    from_rung: usize,
    from_goodput: f64,
}

/// Windows a failed climb trial suppresses further distress-driven climbs.
const CLIMB_COOLDOWN: usize = 3;

/// Hysteresis-band policy: distressed windows (residual error rate past
/// `raise_ber`) trigger a goodput-verified climb, `patience` consecutive
/// windows below `clear_ber` trigger a goodput-verified descent probe, and
/// windows inside the band hold the rung and reset the clean streak — the
/// hysteresis that keeps the policy from oscillating on borderline noise.
#[derive(Debug, Clone)]
pub struct ThresholdPolicy {
    ladder: Vec<LinkSetting>,
    rung: usize,
    raise_ber: f64,
    clear_ber: f64,
    patience: usize,
    clean_streak: usize,
    prober: Prober,
    climb: Option<ClimbTrial>,
    climb_cooldown: usize,
    events: Option<PolicyEvents>,
}

impl ThresholdPolicy {
    /// The calibration the reproduction uses over 64-bit windows: raise
    /// above 3 % residual BER (a window of 64 bits quantizes one flip to
    /// ~1.6 %, so the raise band means "two or more flips"), clear below
    /// 0.4 %, two clean windows of patience before a descent probe.
    pub fn paper_default() -> Self {
        ThresholdPolicy::new(LinkSetting::ladder(), 0.03, 0.004, 2)
    }

    /// A policy over an explicit ladder and band.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty or the band is inverted
    /// (`clear_ber > raise_ber`).
    pub fn new(ladder: Vec<LinkSetting>, raise_ber: f64, clear_ber: f64, patience: usize) -> Self {
        assert!(!ladder.is_empty(), "ladder needs at least one setting");
        assert!(
            clear_ber <= raise_ber,
            "hysteresis band is inverted: clear {clear_ber} > raise {raise_ber}"
        );
        ThresholdPolicy {
            ladder,
            rung: 0,
            raise_ber,
            clear_ber,
            patience: patience.max(1),
            clean_streak: 0,
            prober: Prober::new(),
            climb: None,
            climb_cooldown: 0,
            events: None,
        }
    }

    /// The rung the policy currently sits on.
    pub fn rung(&self) -> usize {
        self.rung
    }
}

impl LinkController for ThresholdPolicy {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn initial(&self) -> LinkSetting {
        self.ladder[self.rung]
    }

    fn attach_events(&mut self, sink: &EventSink) {
        self.events = Some(PolicyEvents::new(sink));
    }

    fn observe(&mut self, observation: &LinkObservation) -> LinkAction {
        if let Some(events) = &mut self.events {
            events.tick(observation);
        }
        // An ascent on trial is judged first, on pure goodput: the heavier
        // rung must beat the window that triggered the climb or the policy
        // drops back and tolerates the distress for a while.
        if let Some(trial) = self.climb.take() {
            if observation.goodput_kbps <= trial.from_goodput {
                self.rung = trial.from_rung;
                self.climb_cooldown = CLIMB_COOLDOWN;
                self.clean_streak = 0;
                return LinkAction::Set(self.ladder[self.rung]);
            }
        }
        self.climb_cooldown = self.climb_cooldown.saturating_sub(1);
        if window_is_bad(observation, self.raise_ber) {
            self.clean_streak = 0;
            // A distressed probe window only *reverts* — the distress was
            // measured at the probed rung, so it says nothing about
            // whether the rung the probe left still copes. If the weather
            // really changed, the next window (back at that rung) will be
            // bad too and the climb happens one window later.
            if let Some(from) = self.prober.on_bad_window() {
                self.rung = from;
                if let Some(ev) = &self.events {
                    ev.instant(
                        "probe_revert",
                        vec![("to_rung", from.into()), ("reason", "distress".into())],
                    );
                }
                return LinkAction::Set(self.ladder[self.rung]);
            }
            if self.rung + 1 < self.ladder.len() && self.climb_cooldown == 0 {
                self.climb = Some(ClimbTrial {
                    from_rung: self.rung,
                    from_goodput: observation.goodput_kbps,
                });
                self.rung += 1;
                return LinkAction::Set(self.ladder[self.rung]);
            }
            return LinkAction::Hold;
        }
        match self.prober.judge(observation) {
            ProbeVerdict::Commit => {
                // The lighter rung carries its weight.
                self.clean_streak = 0;
                if let Some(ev) = &self.events {
                    ev.instant("probe_commit", vec![("rung", self.rung.into())]);
                }
                return LinkAction::Hold;
            }
            ProbeVerdict::Revert(from) => {
                self.rung = from;
                self.clean_streak = 0;
                if let Some(ev) = &self.events {
                    ev.instant(
                        "probe_revert",
                        vec![("to_rung", from.into()), ("reason", "slower".into())],
                    );
                }
                return LinkAction::Set(self.ladder[self.rung]);
            }
            ProbeVerdict::Idle => {}
        }
        // The descent gate is the residual error rate alone — NOT freedom
        // from retransmissions. A heavy rung whose windows straddle noise
        // bursts delivers clean payloads *through* retries forever; holding
        // the descent hostage to retry-free windows would wedge the policy
        // at the most expensive setting permanently.
        if observation.residual_ber <= self.clear_ber {
            self.clean_streak += 1;
            if self.clean_streak >= self.patience && self.rung > 0 && self.prober.ready() {
                self.clean_streak = 0;
                let from = self.rung;
                self.rung = self.prober.start(self.rung, observation.goodput_kbps);
                if let Some(ev) = &self.events {
                    ev.instant(
                        "probe_start",
                        vec![("from_rung", from.into()), ("to_rung", self.rung.into())],
                    );
                }
                return LinkAction::Set(self.ladder[self.rung]);
            }
            return LinkAction::Hold;
        }
        // Inside the band: hold, and require the streak to restart.
        self.clean_streak = 0;
        LinkAction::Hold
    }
}

/// Additive-increase / multiplicative-decrease policy: undistressed
/// windows probe one rung lighter (additive increase of the information
/// rate, committed only when the probe matches the heavier rung's
/// goodput); any distressed window doubles the rung index on a climb
/// trial (multiplicative decrease), jumping most of the way to the heavy
/// end of the ladder in one or two windows — the right shape when noise
/// arrives as bursts that would eat several windows of one-rung stepping.
#[derive(Debug, Clone)]
pub struct AimdPolicy {
    ladder: Vec<LinkSetting>,
    rung: usize,
    raise_ber: f64,
    prober: Prober,
    climb: Option<ClimbTrial>,
    climb_cooldown: usize,
    events: Option<PolicyEvents>,
}

impl AimdPolicy {
    /// The calibration the reproduction uses: the default ladder, starting
    /// light, with distress meaning two or more residual flips in a 64-bit
    /// window (3 %) or a retransmission storm.
    pub fn paper_default() -> Self {
        AimdPolicy::new(LinkSetting::ladder(), 0.03)
    }

    /// A policy over an explicit ladder.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty.
    pub fn new(ladder: Vec<LinkSetting>, raise_ber: f64) -> Self {
        assert!(!ladder.is_empty(), "ladder needs at least one setting");
        AimdPolicy {
            ladder,
            rung: 0,
            raise_ber,
            prober: Prober::new(),
            climb: None,
            climb_cooldown: 0,
            events: None,
        }
    }

    /// The rung the policy currently sits on.
    pub fn rung(&self) -> usize {
        self.rung
    }
}

impl LinkController for AimdPolicy {
    fn name(&self) -> &'static str {
        "aimd"
    }

    fn initial(&self) -> LinkSetting {
        self.ladder[self.rung]
    }

    fn attach_events(&mut self, sink: &EventSink) {
        self.events = Some(PolicyEvents::new(sink));
    }

    fn observe(&mut self, observation: &LinkObservation) -> LinkAction {
        if let Some(events) = &mut self.events {
            events.tick(observation);
        }
        let top = self.ladder.len() - 1;
        // An ascent on trial is judged on pure goodput, like the threshold
        // policy's.
        if let Some(trial) = self.climb.take() {
            if observation.goodput_kbps <= trial.from_goodput {
                self.rung = trial.from_rung;
                self.climb_cooldown = CLIMB_COOLDOWN;
                return LinkAction::Set(self.ladder[self.rung]);
            }
        }
        self.climb_cooldown = self.climb_cooldown.saturating_sub(1);
        if window_is_bad(observation, self.raise_ber) {
            // A blown probe only reverts (see ThresholdPolicy::observe).
            if let Some(from) = self.prober.on_bad_window() {
                self.rung = from;
                if let Some(ev) = &self.events {
                    ev.instant(
                        "probe_revert",
                        vec![("to_rung", from.into()), ("reason", "distress".into())],
                    );
                }
                return LinkAction::Set(self.ladder[self.rung]);
            }
            // Multiplicative decrease of the rate: double the rung index
            // (from the lightest rung, step to 1 first), on trial.
            let next = (self.rung * 2).max(self.rung + 1).min(top);
            if next == self.rung || self.climb_cooldown > 0 {
                return LinkAction::Hold;
            }
            self.climb = Some(ClimbTrial {
                from_rung: self.rung,
                from_goodput: observation.goodput_kbps,
            });
            self.rung = next;
            return LinkAction::Set(self.ladder[self.rung]);
        }
        match self.prober.judge(observation) {
            ProbeVerdict::Commit => {
                if let Some(ev) = &self.events {
                    ev.instant("probe_commit", vec![("rung", self.rung.into())]);
                }
                return LinkAction::Hold;
            }
            ProbeVerdict::Revert(from) => {
                self.rung = from;
                if let Some(ev) = &self.events {
                    ev.instant(
                        "probe_revert",
                        vec![("to_rung", from.into()), ("reason", "slower".into())],
                    );
                }
                return LinkAction::Set(self.ladder[self.rung]);
            }
            ProbeVerdict::Idle => {}
        }
        // Any window that was not distressed is a probing opportunity —
        // AIMD is the aggressive prober (see ThresholdPolicy for why the
        // gate must not demand retry-free windows).
        if self.rung > 0 && self.prober.ready() {
            // Additive increase: probe lighter.
            let from = self.rung;
            self.rung = self.prober.start(self.rung, observation.goodput_kbps);
            if let Some(ev) = &self.events {
                ev.instant(
                    "probe_start",
                    vec![("from_rung", from.into()), ("to_rung", self.rung.into())],
                );
            }
            return LinkAction::Set(self.ladder[self.rung]);
        }
        LinkAction::Hold
    }
}

/// One rung's belief state inside the [`BanditPolicy`]: a decayed,
/// *time-weighted* goodput estimate.
///
/// The estimate is kept as decayed sums of clean kilobits and airtime
/// rather than a per-window EWMA of goodput numbers, because windows are
/// not equal: a zero-goodput window burns several times the airtime of a
/// clean one (retry after retry), so an unweighted window average wildly
/// overrates a bimodal rung — uncoded looks like the mean of its good
/// windows when its true goodput is dragged down by the airtime its dead
/// windows consume.
#[derive(Debug, Clone, Copy)]
struct RungBelief {
    /// Decayed clean kilobits delivered while this rung ran.
    kb: f64,
    /// Decayed airtime (seconds) spent while this rung ran.
    secs: f64,
    /// Decayed evidence weight: incremented when the rung is observed,
    /// multiplied by the staleness decay every window it is not — the
    /// optimism bonus grows as the evidence behind an estimate ages.
    weight: f64,
}

impl RungBelief {
    /// Time-weighted goodput estimate (kb/s), or `None` before any
    /// evidence.
    fn mean(&self) -> Option<f64> {
        (self.weight > f64::EPSILON && self.secs > 0.0).then(|| self.kb / self.secs)
    }
}

/// Goodput bandit: UCB-style rung selection over per-rung, per-regime
/// goodput estimates.
///
/// The trial-based policies ([`ThresholdPolicy`], [`AimdPolicy`]) forget a
/// rung the moment they leave it, so every descent needs a fresh
/// probe/commit trial — a probing tax of several windows that keeps them
/// just under the best fixed code on channels whose optimum never moves.
/// The bandit instead *remembers*: each rung keeps a decayed,
/// time-weighted estimate of the goodput measured while it ran (decayed
/// clean kilobits over decayed airtime — see `RungBelief` for why
/// per-window averages overrate bimodal rungs), and each window the
/// policy moves to the rung with the highest optimism-adjusted score
///
/// ```text
/// score(r) = mean(r) + explore · peak · sqrt(ln(t + 1) / weight(r))
/// ```
///
/// where `peak` is the best current estimate (the bonus is scaled to the
/// channel, which spans two orders of magnitude across the sweep grid) and
/// `weight(r)` decays every window rung `r` goes unobserved — a stale rung
/// slowly regains optimism until it earns a one-window re-visit. There is
/// no commit trial to fail and no cooldown to wait out: the one re-visit
/// window *is* the entire probing tax.
///
/// Plain UCB alone loses badly on the phased channels, so five pieces of
/// domain structure surround it:
///
/// * **Regime banks.** The phased noise alternates calm stretches with
///   bursts, and the best rung differs per regime. A smoothed dirty-window
///   rate with sticky hysteresis classifies the prevailing regime, and
///   each regime keeps its *own* per-rung estimates — a flip lands the
///   policy directly on the rung that regime remembers as best, instead of
///   re-learning the ladder from inside the weather. The windows that
///   drove a flip are retroactively re-credited to the right bank
///   (`REGIME_LAG`), so bank boundaries stay clean.
/// * **Rate-ratio priors.** An unvisited rung is scored by the current
///   window's goodput scaled by the rungs' nominal rates, so the policy
///   does not have to climb the whole ladder to learn that heavy
///   protection costs airtime on a clean channel.
/// * **A plausibility ceiling.** The optimistic part of a score is capped
///   by the best demonstrated wire speed times the rung's rate
///   (`CEILING_MARGIN`): stable losers stay closed no matter how stale,
///   which is what makes the exploration bonus affordable at all.
/// * **Storm-out.** When the burst bank knows the storm delivers almost
///   nothing at any protection level (`STORM_OUT_FRACTION`), the policy
///   parks on the fastest rung and lets its windows fail cheaply until
///   the weather lifts, rather than scavenging kilobits through
///   multi-millisecond retry windows.
/// * **Candidate gating and rate preference.** A coded window that
///   delivered *nothing* may only hold or bail to the fastest rung — a
///   dead medium cannot be out-coded, only failed through cheaply. A
///   merely distressed window may hold or climb (descending into weather
///   just measured wastes the next window with certainty); a clean window
///   opens the whole ladder. Among measured near-equals the higher-rate
///   rung is preferred (`RATE_PREFERENCE_BAND`): equal calm goodput
///   does not make rungs equal, because the higher-rate rung fails fast
///   and cheap when the regime turns.
#[derive(Debug, Clone)]
pub struct BanditPolicy {
    ladder: Vec<LinkSetting>,
    rung: usize,
    /// Regime-conditioned belief banks: `banks[0]` holds the calm-regime
    /// estimates, `banks[1]` the burst-regime ones. Scores are computed
    /// from the bank matching the prevailing regime, so a regime flip
    /// lands the policy directly on the rung that bank remembers as best —
    /// instead of re-learning the whole ladder from inside the weather.
    banks: [Vec<RungBelief>; 2],
    /// Smoothed dirty-window rate — the regime classifier's input. A
    /// single dirty window inside a calm stretch (the desynchronization
    /// floor of the light rungs) must not flip the regime; a run of them
    /// must.
    dirty_rate: f64,
    /// Whether the burst-regime bank is active (sticky, with hysteresis).
    burst_mode: bool,
    /// The last `REGIME_LAG` windows' evidence, for retroactive
    /// reclassification: the classifier flips one or two windows *after*
    /// the weather actually changed, so the windows that drove the flip
    /// were credited to the wrong bank. On a flip, the lagged windows
    /// whose *character matches the new regime* (dirty windows on a
    /// calm→burst flip, clean ones on a burst→calm flip) are unwound and
    /// re-credited — without this, every burst crashes the calm bank's
    /// incumbent on its way in and inflates the burst bank's estimates on
    /// its way out. Windows matching the *old* regime stay where they
    /// were: re-crediting a clean calm window into the burst bank would
    /// hand the storm a calm-rate goodput estimate, which both disarms
    /// the storm-out rule and parks the policy on a rung the storm is
    /// about to kill.
    recent: Vec<RecentWindow>,
    window: usize,
    decay: f64,
    explore: f64,
    raise_ber: f64,
    /// Telemetry counter for regime-bank flips (`adapt.bank_flips`), set
    /// by [`LinkController::attach_telemetry`].
    bank_flips: Option<soc_sim::telemetry::Counter>,
    /// Adapt-track event recorder, set by [`LinkController::attach_events`].
    events: Option<PolicyEvents>,
}

/// One lagged window awaiting possible retroactive reclassification (see
/// the `recent` field of [`BanditPolicy`]).
#[derive(Debug, Clone, Copy)]
struct RecentWindow {
    /// Bank the window's evidence was credited to.
    bank: usize,
    /// Ladder rung the window ran on.
    rung: usize,
    /// The rung's belief *before* the window was credited, for unwinding.
    before: RungBelief,
    /// Clean kilobits the window delivered.
    kb: f64,
    /// Airtime the window consumed (seconds).
    secs: f64,
    /// Whether the window read as dirty to the regime classifier.
    dirty: bool,
}

/// Virtual evidence weight behind the rate-ratio prior of a rung that has
/// never run: small enough that one real observation dominates it, large
/// enough that the optimism bonus stays finite.
const PRIOR_WEIGHT: f64 = 0.3;

/// Smoothing gain of the dirty-window rate that classifies the regime.
/// Calibrated against [`BURST_ENTER`] so that isolated dirty windows —
/// even two out of three, the worst run the light rungs' calm-phase
/// desynchronization floor produces at any frequency — cannot flip the
/// regime, while a true burst (every window dirty) flips it on the third.
/// A false burst flip is doubly poisonous: it burns calm windows on heavy
/// rungs *and* writes calm-phase goodput into the burst bank, which a
/// later real burst then trusts.
const REGIME_GAIN: f64 = 0.25;

/// Dirty-rate at which the calm regime hands over to the burst regime.
const BURST_ENTER: f64 = 0.55;

/// Dirty-rate at which the burst regime hands back to calm. The gap to
/// [`BURST_ENTER`] is hysteresis: a clean-ish window mid-burst (a heavy
/// rung absorbing the weather) must not flap the banks.
const BURST_EXIT: f64 = 0.25;

/// Staleness decay of the *inactive* bank: its regime is not running, so
/// its evidence ages across the cycle, not per window.
const IDLE_DECAY: f64 = 0.99;

/// Per-window decay of the evidence *weight* (the optimism denominator)
/// inside the active bank. Deliberately faster than the estimate decay:
/// the estimates want a long, outlier-resistant memory, but exploration
/// wants stale rungs re-checked on a several-window cadence.
const WEIGHT_DECAY: f64 = 0.95;

/// Aging applied to the newly-activated bank's weights on a regime flip:
/// its estimates are a phase old and its edges may have been polluted by
/// transition windows, so every rung earns a prompt re-verification visit.
const FLIP_AGING: f64 = 0.7;

/// Slack on the plausibility ceiling (see [`BanditPolicy::score`]): a rung
/// may optimistically promise up to 10 % more than its rate ratio predicts
/// before the cap bites, covering rate-adjacent effects (fewer
/// retransmissions at a stronger code) without re-opening stable losers.
const CEILING_MARGIN: f64 = 1.1;

/// Burst-to-calm goodput ratio below which the storm-out rule engages
/// (see the selection step in the bandit's `observe`): a storm whose best
/// rung delivers less than this fraction of the calm peak is cheaper to
/// wait out on fast-failing windows than to scavenge.
const STORM_OUT_FRACTION: f64 = 0.35;

/// Classifier lag in windows: how many trailing windows are subject to
/// retroactive reclassification when the regime flips.
const REGIME_LAG: usize = 2;

/// Fraction of the winning rung's measured goodput another measured rung
/// must reach for the higher-rate rung to be preferred (see the selection
/// step in the bandit's `observe`).
/// Wide on purpose: a light rung's estimate carries its
/// desynchronization floor, and a short unlucky stretch (three dead
/// windows in ten) can depress it 15 % below its long-run value. Because
/// selection stops sampling a rung the moment it scores second, such a
/// depressed estimate would otherwise freeze — the preference band is the
/// mechanism that keeps the fastest rung sampled (and its estimate
/// honest) while the measured gap is small enough to be floor noise.
const RATE_PREFERENCE_BAND: f64 = 0.80;

impl BanditPolicy {
    /// The calibration the reproduction uses over 64-bit windows: decay
    /// 0.98 per window (a ~50-window evidence horizon — regime changes are
    /// handled by the bank switch, so the in-regime estimates can afford a
    /// long, outlier-resistant memory; anything shorter lets a chance
    /// cluster of desynchronized windows crush a light rung's estimate
    /// below the rate-preference band and strand the policy on a slower
    /// rung for the rest of the phase) and exploration coefficient 0.08,
    /// with the same 3 % residual-BER distress threshold as the other
    /// policies.
    pub fn paper_default() -> Self {
        BanditPolicy::new(LinkSetting::ladder(), 0.98, 0.08)
    }

    /// A bandit over an explicit ladder.
    ///
    /// `decay` is the per-window decay of the evidence sums (both the
    /// observed rung's running estimate and the staleness of the others),
    /// `explore` the optimism coefficient (relative to the best current
    /// estimate).
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty, `decay` is outside `(0, 1]`, or
    /// `explore` is not positive.
    pub fn new(ladder: Vec<LinkSetting>, decay: f64, explore: f64) -> Self {
        assert!(!ladder.is_empty(), "ladder needs at least one setting");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        assert!(explore > 0.0, "explore must be positive");
        let bank = vec![
            RungBelief {
                kb: 0.0,
                secs: 0.0,
                weight: 0.0,
            };
            ladder.len()
        ];
        BanditPolicy {
            ladder,
            rung: 0,
            banks: [bank.clone(), bank],
            dirty_rate: 0.0,
            burst_mode: false,
            recent: Vec::new(),
            window: 0,
            decay,
            explore,
            raise_ber: 0.03,
            bank_flips: None,
            events: None,
        }
    }

    /// The rung the policy currently sits on.
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// Index of the belief bank matching the prevailing regime.
    fn active_bank(&self) -> usize {
        usize::from(self.burst_mode)
    }

    /// Whether any rung heavier than `observed` has ever been measured, in
    /// either regime bank.
    fn any_heavier_measured(&self, observed: usize) -> bool {
        (observed + 1..self.ladder.len())
            .any(|r| self.banks.iter().any(|bank| bank[r].mean().is_some()))
    }

    /// Two scales of the active bank: the best goodput estimate across its
    /// visited rungs (what the optimism bonus is expressed in) and the
    /// best demonstrated *wire speed* — `mean / rate`, the per-unit-rate
    /// efficiency — which anchors the plausibility ceiling. The wire speed
    /// is taken as a max over rungs because the best-goodput rung may
    /// itself be degraded (losing frames mid-burst), which would
    /// underestimate what the medium can carry and wrongly cap the very
    /// rungs that absorb the weather better. An empty active bank — the
    /// first windows of a never-before-seen regime — borrows the other
    /// bank's scales: the channel's goodput scale does not vanish with the
    /// weather, and a zero scale would zero every exploration bonus
    /// exactly when exploration is the only source of signal.
    fn peak(&self) -> (f64, f64) {
        let best_of = |bank: &[RungBelief]| {
            bank.iter()
                .enumerate()
                .filter_map(|(r, b)| {
                    // A rung whose estimate is zero contributes no scale:
                    // a bank where everything measured dead so far (the
                    // first windows inside a hard burst) must still borrow
                    // the other bank's scale or every exploration bonus
                    // goes to zero and the policy wedges on a dead rung.
                    b.mean()
                        .filter(|m| *m > 0.0)
                        .map(|m| (m, m / self.ladder[r].rate().max(1e-9)))
                })
                .fold(None, |best: Option<(f64, f64)>, (mean, speed)| match best {
                    Some((bm, bs)) => Some((bm.max(mean), bs.max(speed))),
                    None => Some((mean, speed)),
                })
        };
        best_of(&self.banks[self.active_bank()])
            .or_else(|| best_of(&self.banks[1 - self.active_bank()]))
            .map_or((1e-6, 1e-6), |(mean, speed)| {
                (mean.max(1e-6), speed.max(1e-6))
            })
    }

    /// Upper-confidence score of rung `r` in the active bank, given the
    /// goodput `g` the current window just measured at rung `observed`
    /// (the anchor of the rate-ratio prior for unvisited rungs).
    ///
    /// The optimistic part of the score is capped by a *plausibility
    /// ceiling*: goodput is physically bounded by the information rate, so
    /// a rung whose rate is 0.57 of the current best rung's cannot
    /// plausibly deliver more than ~0.57 of the best rung's goodput — no
    /// matter how stale its estimate. The cap is what keeps the bandit
    /// from burning windows re-checking stable losers (the dominant
    /// exploration waste on channels with a large goodput spread), while
    /// `max(ceiling, mean)` keeps real measurements competitive: if the
    /// incumbent degrades, a rung whose *measured* mean beats it is
    /// selectable regardless of the ceiling.
    fn score(&self, r: usize, observed: usize, g: f64, bad: bool) -> f64 {
        let horizon = ((self.window + 2) as f64).ln();
        let (peak_mean, wire_speed) = self.peak();
        let bonus = |weight: f64| self.explore * peak_mean * (horizon / weight).sqrt();
        let ceiling = wire_speed * self.ladder[r].rate() * CEILING_MARGIN;
        let belief = &self.banks[self.active_bank()][r];
        match belief.mean() {
            Some(mean) => (mean + bonus(belief.weight)).min(ceiling.max(mean)),
            None if bad && r > observed && observed == 0 && !self.any_heavier_measured(0) => {
                // The *uncoded* rung is in distress and no protected rung
                // has ever run, under any regime. The rate-ratio prior is
                // exactly wrong here — distressed goodput is limited by
                // errors, not by rate, so scaling the broken rung's
                // delivery *down* by the rate ratio predicts protection
                // cannot help — and with no protected rung ever measured
                // there is nothing to extrapolate from. An untried heavier
                // rung is the only source of signal a failing link has:
                // unbounded optimism, with the nearest-first ordering
                // trying one hop up before a leap. The rule is pinned to
                // the bottom rung: from a *coded* rung in distress the
                // priors already climb on their own when the next rung up
                // has the higher information rate, and when it does not
                // (the 3x-repeat end of the ladder) optimism-driven climbs
                // are precisely the multi-millisecond dead windows the
                // storm path above exists to avoid. Once any protected
                // rung carries a measurement the scores speak for
                // themselves.
                f64::INFINITY
            }
            None if self.burst_mode && r < observed => {
                // A descent to a rung this storm has never measured. The
                // rate-ratio prior is built on "goodput scales with rate
                // on a channel clean enough to carry the rung" — mid-storm
                // that premise is exactly what's in doubt, and one good
                // window at a protected rung says nothing about how a
                // *lighter* rung fares in the same weather. No optimism
                // either: the storm bank's best measured rung is the most
                // this descent may promise, so an un-measured light rung
                // can never outbid the rung that is demonstrably carrying
                // the storm. (Deliberate storm parking goes through the
                // storm-out rule above, on evidence, not on priors.)
                self.banks[self.active_bank()]
                    .iter()
                    .filter_map(RungBelief::mean)
                    .fold(0.0, f64::max)
                    .min(g * self.ladder[r].rate() / self.ladder[observed].rate().max(1e-9))
            }
            None => {
                // Never visited in this regime: predict its goodput from
                // the nominal rate ratio (goodput scales with the
                // information rate on a channel clean enough to carry the
                // rung at all).
                let anchor = self.ladder[observed].rate().max(1e-9);
                let prior = g * self.ladder[r].rate() / anchor;
                (prior + bonus(PRIOR_WEIGHT)).min(ceiling.max(prior))
            }
        }
    }
}

impl LinkController for BanditPolicy {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn initial(&self) -> LinkSetting {
        self.ladder[self.rung]
    }

    fn attach_telemetry(&mut self, registry: &soc_sim::telemetry::Registry) {
        self.bank_flips = Some(registry.counter("adapt.bank_flips"));
    }

    fn attach_events(&mut self, sink: &EventSink) {
        self.events = Some(PolicyEvents::new(sink));
    }

    fn observe(&mut self, observation: &LinkObservation) -> LinkAction {
        if let Some(events) = &mut self.events {
            events.tick(observation);
        }
        let g = if observation.goodput_kbps.is_finite() {
            observation.goodput_kbps.max(0.0)
        } else {
            0.0
        };
        let observed = self
            .ladder
            .iter()
            .position(|s| *s == observation.setting)
            .unwrap_or(self.rung);
        let bad = window_is_bad(observation, self.raise_ber);
        let clean = observation.residual_ber <= 0.0 && observation.decode_failures == 0;
        let window_secs = observation.elapsed.as_secs_f64().max(1e-12);
        let window_kb = g * window_secs;
        // Classify the prevailing regime. "Dirty" means the *medium* is
        // being hit, and real weather has a signature the light rungs'
        // calm-phase desynchronization floor does not: it forces retry
        // rounds (or outright decode failures), or garbles a substantial
        // fraction of the payload. A floor blip — a window lost to a
        // couple of flipped bits, with the engine never even retrying —
        // is part of a light rung's *calm* mixture and must charge its
        // calm estimate, not flip the banks: on channels whose uncoded
        // floor kills most windows, counting blips as weather wedges the
        // classifier in burst mode permanently (and the storm-out rule
        // then parks the policy on the floor it is misreading). "Dirty"
        // also deliberately includes *substantial* repaired damage: a
        // heavy rung absorbing the weather is still weather. The
        // magnitude threshold matters — a correcting code fixes the odd
        // bit every few windows from the calm-phase noise floor, and
        // counting that as burst evidence would let the rung's own
        // robustness hold the classifier in burst mode forever.
        let floor_blip = observation.retransmissions == 0
            && observation.decode_failures == 0
            && observation.residual_ber <= 2.0 * self.raise_ber;
        let dirty = (!clean && !floor_blip)
            || observation.corrected_bits * 8 > observation.payload_bits.max(1);
        // A *damaged* window at a coded rung — retransmissions, decode
        // failures, or nothing delivered at all — is several times the
        // evidence an ordinary dirty window is: the coded window ran long
        // enough (slow symbols, retry rounds) that real weather, not a
        // desynchronization blip, is the only thing that damages it.
        // Tripled evidence flips the classifier off a cold dirty-rate in
        // one such window, which matters because every pre-flip window at
        // a coded rung burns multiple milliseconds of retries. Dirty
        // windows at the uncoded rung stay single evidence: they fail
        // fast anyway, and on channels whose calm phase has a deep
        // desynchronization floor they arrive often enough to flap a
        // twitchier classifier.
        let damaged = dirty
            && observed > 0
            && (observation.retransmissions > 0
                || observation.decode_failures > 0
                || g <= f64::EPSILON);
        let evidence = if damaged { 3 } else { 1 };
        for _ in 0..evidence {
            self.dirty_rate += REGIME_GAIN * (f64::from(u8::from(dirty)) - self.dirty_rate);
        }
        let was_burst = self.burst_mode;
        if self.burst_mode {
            if self.dirty_rate <= BURST_EXIT {
                self.burst_mode = false;
            }
        } else if self.dirty_rate >= BURST_ENTER {
            self.burst_mode = true;
        }
        let active = self.active_bank();
        if self.burst_mode != was_burst {
            if let Some(flips) = &self.bank_flips {
                flips.incr();
            }
            if let Some(ev) = &self.events {
                ev.instant(
                    "regime_flip",
                    vec![
                        ("to", if self.burst_mode { "burst" } else { "calm" }.into()),
                        ("dirty_rate", self.dirty_rate.into()),
                        ("window", self.window.into()),
                    ],
                );
            }
            // The windows that drove the flip were measured under the new
            // regime but credited to the old bank (classifier lag): unwind
            // the ones whose character matches the new regime — dirty
            // windows when entering a burst, clean ones when leaving it —
            // newest first, so a rung touched twice lands back on its
            // oldest snapshot, and re-credit their evidence. Lagged
            // windows matching the *old* regime stay put: a clean calm
            // window re-credited into the burst bank would hand the storm
            // a calm-rate estimate, disarming storm-out below.
            let stale = usize::from(was_burst);
            for window in std::mem::take(&mut self.recent).into_iter().rev() {
                if window.bank == stale && window.dirty == self.burst_mode {
                    self.banks[stale][window.rung] = window.before;
                    let belief = &mut self.banks[active][window.rung];
                    belief.kb = belief.kb * self.decay + window.kb;
                    belief.secs = belief.secs * self.decay + window.secs;
                    belief.weight = belief.weight * WEIGHT_DECAY + 1.0;
                }
            }
            // The re-activated bank's knowledge is a phase old: age its
            // weights so every rung earns a prompt re-verification visit.
            for belief in &mut self.banks[active] {
                belief.weight *= FLIP_AGING;
            }
        }
        {
            if self.recent.len() >= REGIME_LAG {
                self.recent.remove(0);
            }
            self.recent.push(RecentWindow {
                bank: active,
                rung: observed,
                before: self.banks[active][observed],
                kb: window_kb,
                secs: window_secs,
                dirty,
            });
            let belief = &mut self.banks[active][observed];
            belief.kb = belief.kb * self.decay + window_kb;
            belief.secs = belief.secs * self.decay + window_secs;
            belief.weight = belief.weight * WEIGHT_DECAY + 1.0;
        }
        for (bank, beliefs) in self.banks.iter_mut().enumerate() {
            let decay = if bank == active {
                WEIGHT_DECAY
            } else {
                IDLE_DECAY
            };
            for (r, belief) in beliefs.iter_mut().enumerate() {
                if bank != active || r != observed {
                    belief.weight *= decay;
                }
            }
        }
        self.window += 1;

        // Storm-out: when the burst bank knows (from at least two rungs of
        // evidence) that the storm delivers almost nothing at *any*
        // protection level, scavenging bits is a losing trade — a heavy
        // rung's windows run many times longer than a light rung's fast
        // failures, and every extra millisecond inside the storm is a
        // millisecond of calm-rate delivery lost at the other end. Park on
        // the fastest rung (cheapest failed window), let the windows fail
        // quickly, and be already at the right setting the moment the
        // weather lifts. On channels whose bursts still carry real goodput
        // through heavy protection (the LLC cells, where Hamming moves
        // ~75 % of calm rate mid-burst) the threshold never fires and the
        // bandit scavenges as usual.
        if self.burst_mode {
            let bank_peak =
                |bank: &[RungBelief]| bank.iter().filter_map(RungBelief::mean).fold(0.0, f64::max);
            let visited = self.banks[active]
                .iter()
                .filter(|b| b.weight > f64::EPSILON)
                .count();
            // "No protection level helps" is only a conclusion the bank
            // can draw after the heavy half of the ladder has actually
            // run in this storm: a bank holding two dead *light* rungs is
            // equally consistent with a storm that Reed–Solomon rides out
            // fine, and parking on the fastest rung then would freeze
            // exploration exactly one rung short of the answer.
            let heavy_visited = self.banks[active]
                .iter()
                .enumerate()
                .any(|(r, b)| r >= self.ladder.len() / 2 && b.weight > f64::EPSILON);
            let storm_peak = bank_peak(&self.banks[active]);
            let calm_peak = bank_peak(&self.banks[1 - active]);
            if visited >= 2
                && heavy_visited
                && calm_peak > 0.0
                && storm_peak < STORM_OUT_FRACTION * calm_peak
            {
                let fastest = (0..self.ladder.len())
                    .max_by(|a, b| self.ladder[*a].rate().total_cmp(&self.ladder[*b].rate()))
                    .unwrap_or(0);
                return if fastest == observed {
                    self.rung = observed;
                    LinkAction::Hold
                } else {
                    self.rung = fastest;
                    LinkAction::Set(self.ladder[fastest])
                };
            }
        }

        // A coded window that delivered *nothing* bails straight to the
        // fastest rung: zero delivery through a correcting code means the
        // medium itself is saturated, and heavier protection cannot
        // conjure signal out of a dead channel — it just multiplies the
        // airtime the next dead window burns (the heaviest rung's retry
        // window runs an order of magnitude longer than an uncoded fast
        // failure). This is a reflex, not a scored decision: mid-storm
        // the bank usually has no positive estimate yet, and a score
        // comparison over zeros would hold the dying rung by its
        // exploration bonus alone.
        let fastest = (0..self.ladder.len())
            .max_by(|a, b| self.ladder[*a].rate().total_cmp(&self.ladder[*b].rate()))
            .unwrap_or(0);
        if bad && g <= f64::EPSILON && observed > 0 && observed != fastest {
            self.rung = fastest;
            return LinkAction::Set(self.ladder[fastest]);
        }

        // Candidates by window health. A distressed window may only hold
        // or climb — descending into the weather it just measured would
        // waste the next window with certainty, however attractive a
        // light rung's stale calm-time estimate looks. A fully clean
        // window opens the whole ladder: descents can jump straight past
        // a rung whose estimate a burst poisoned (the failure mode that
        // wedges a neighbours-only walker at the heavy end). Anything in
        // between — sub-threshold residuals, decode failures recovered by
        // retry — moves one rung at a time.
        let top = self.ladder.len() - 1;
        let candidates: Vec<usize> = if bad {
            (observed..=top).collect()
        } else if clean {
            (0..=top).collect()
        } else {
            (observed.saturating_sub(1)..=(observed + 1).min(top)).collect()
        };
        // Nearest-first with strict improvement required: ties hold the
        // current rung instead of oscillating.
        let mut best = observed;
        let mut best_score = self.score(observed, observed, g, bad);
        let mut order = candidates.clone();
        order.sort_by_key(|r| (r.abs_diff(observed), *r));
        for r in order {
            let score = self.score(r, observed, g, bad);
            if score > best_score {
                best = r;
                best_score = score;
            }
        }
        // Rate preference among measured near-equals: if another candidate
        // with real evidence delivers within a few percent of the winner's
        // *measured* goodput, take the one with the higher information
        // rate. Equal calm goodput does not make rungs equal: regime
        // changes recur, and the rung with the higher rate fails fast and
        // cheap when the weather turns, while a heavy rung burns
        // multi-millisecond retry windows before the classifier reacts.
        // Only measured means qualify — optimism bonuses and priors are
        // not evidence of near-equality.
        if let Some(best_mean) = self.banks[active][best].mean() {
            let mut preferred = best;
            for r in candidates {
                let belief = &self.banks[active][r];
                if belief.weight >= 0.5
                    && self.ladder[r].rate() > self.ladder[preferred].rate()
                    && belief
                        .mean()
                        .is_some_and(|m| m >= RATE_PREFERENCE_BAND * best_mean)
                {
                    preferred = r;
                }
            }
            best = preferred;
        }
        if best == observed {
            self.rung = observed;
            LinkAction::Hold
        } else {
            self.rung = best;
            LinkAction::Set(self.ladder[best])
        }
    }

    fn goodput_estimate(&self) -> Option<f64> {
        // The current rung's estimate under the prevailing regime; if this
        // regime never ran the rung, fall back to the other bank's view —
        // a stale estimate still beats none for slot weighting.
        let active = self.active_bank();
        self.banks[active][self.rung]
            .mean()
            .or_else(|| self.banks[1 - active][self.rung].mean())
    }

    fn rung_estimates(&self) -> Vec<RungEstimate> {
        // Reported estimates pool both regime banks: decayed clean bits
        // over decayed airtime across everything the rung ever ran under.
        self.ladder
            .iter()
            .enumerate()
            .map(|(r, setting)| {
                let kb: f64 = self.banks.iter().map(|b| b[r].kb).sum();
                let secs: f64 = self.banks.iter().map(|b| b[r].secs).sum();
                let weight: f64 = self.banks.iter().map(|b| b[r].weight).sum();
                RungEstimate {
                    code: setting.code,
                    symbol_repeat: setting.symbol_repeat,
                    goodput_kbps: if weight > f64::EPSILON && secs > 0.0 {
                        kb / secs
                    } else {
                        0.0
                    },
                    weight,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::LinkCodeKind;
    use soc_sim::clock::Time;

    /// Ladder index of a setting (off-ladder settings count as rung 0).
    fn rung_of(setting: LinkSetting) -> usize {
        LinkSetting::ladder()
            .iter()
            .position(|s| *s == setting)
            .unwrap_or(0)
    }

    /// A synthetic observation mimicking the measured channel economics:
    /// clean windows get faster as the setting gets lighter, dirty windows
    /// deliver *something* — and more of it the more robust the setting —
    /// which is the gradient the goodput-verified climbs ratchet up.
    fn observe_synthetic(setting: LinkSetting, index: usize, dirty: bool) -> LinkObservation {
        let rung = rung_of(setting);
        LinkObservation {
            window_index: index,
            setting,
            payload_bits: 64,
            frames_sent: 1,
            residual_ber: if dirty { 0.05 } else { 0.0 },
            goodput_kbps: if dirty {
                5.0 + 10.0 * rung as f64
            } else {
                100.0 - rung as f64
            },
            retransmissions: 0,
            decode_failures: usize::from(dirty),
            corrected_bits: 0,
            elapsed: Time::from_us(10),
        }
    }

    /// Drives a controller against an environment where a window is dirty
    /// unless its setting is at least as robust as `clean_from` (ladder
    /// index), returning the settings each window ran with.
    fn drive(
        controller: &mut dyn LinkController,
        windows: usize,
        clean_from: usize,
    ) -> Vec<LinkSetting> {
        let ladder = LinkSetting::ladder();
        let mut setting = controller.initial();
        let mut history = Vec::new();
        for index in 0..windows {
            history.push(setting);
            // Settings off the ladder (a pinned FixedPolicy point) count as
            // robust enough: the environment only punishes light rungs.
            let rung = ladder
                .iter()
                .position(|s| *s == setting)
                .unwrap_or(usize::MAX);
            let dirty = rung < clean_from;
            if let LinkAction::Set(next) =
                controller.observe(&observe_synthetic(setting, index, dirty))
            {
                setting = next;
            }
        }
        history
    }

    #[test]
    fn fixed_policy_never_moves() {
        let pinned = LinkSetting::new(LinkCodeKind::Hamming74, 2);
        let mut policy = FixedPolicy::new(pinned);
        let history = drive(&mut policy, 10, usize::MAX);
        assert!(history.iter().all(|s| *s == pinned));
    }

    #[test]
    fn threshold_policy_climbs_under_sustained_noise_and_descends_in_quiet() {
        // Everything below Reed-Solomon (rung 2) is dirty: the policy must
        // climb there and spend most windows on an RS setting.
        let mut policy = ThresholdPolicy::paper_default();
        let history = drive(&mut policy, 32, 2);
        let first_rs = history
            .iter()
            .position(|s| matches!(s.code, LinkCodeKind::ReedSolomon { .. }))
            .expect("policy must reach RS");
        assert!(
            first_rs <= 4,
            "goodput-ratcheted climbing reaches RS quickly, took {first_rs}"
        );
        let rs_windows = history
            .iter()
            .filter(|s| matches!(s.code, LinkCodeKind::ReedSolomon { .. }))
            .count();
        assert!(
            rs_windows >= 20,
            "policy must spend most windows on RS (probes allowed), got {rs_windows}/32"
        );
        // A long all-clean stretch walks back to the lightest rung and
        // stays (probes from rung 0 cannot go lower).
        let mut policy = ThresholdPolicy::paper_default();
        let history = drive(&mut policy, 32, 0);
        assert_eq!(*history.last().unwrap(), LinkSetting::lightest());
        let light_windows = history
            .iter()
            .filter(|s| s.code == LinkCodeKind::None)
            .count();
        assert!(light_windows >= 24, "got {light_windows}/32 light windows");
    }

    #[test]
    fn aimd_policy_backs_off_multiplicatively_and_probes_additively() {
        let mut policy = AimdPolicy::paper_default();
        // Sustained noise below the top rung: AIMD must reach and mostly
        // hold a Reed-Solomon setting.
        let history = drive(&mut policy, 32, 2);
        let first_rs = history
            .iter()
            .position(|s| matches!(s.code, LinkCodeKind::ReedSolomon { .. }))
            .expect("AIMD must reach RS");
        assert!(
            first_rs <= 4,
            "doubling must reach RS quickly, took {first_rs}"
        );
        let rs_windows = history
            .iter()
            .filter(|s| matches!(s.code, LinkCodeKind::ReedSolomon { .. }))
            .count();
        assert!(rs_windows >= 16, "got {rs_windows}/32 RS windows");
        // Sustained quiet: returns to (and stays at) the lightest rung.
        let mut policy = AimdPolicy::paper_default();
        let history = drive(&mut policy, 24, 0);
        assert_eq!(*history.last().unwrap(), LinkSetting::lightest());
    }

    #[test]
    fn policies_clamp_at_both_ladder_ends_and_never_pick_zero_rate() {
        let ladder = LinkSetting::ladder();
        let top = *ladder.last().unwrap();
        let mut threshold = ThresholdPolicy::paper_default();
        let mut aimd = AimdPolicy::paper_default();
        // Everything is always dirty: both must saturate at the top rung
        // without stepping past it — and every setting along the way must
        // have a strictly positive rate.
        let mut t_setting = threshold.initial();
        let mut a_setting = aimd.initial();
        for index in 0..24 {
            for (policy, setting) in [
                (&mut threshold as &mut dyn LinkController, &mut t_setting),
                (&mut aimd, &mut a_setting),
            ] {
                if let LinkAction::Set(next) =
                    policy.observe(&observe_synthetic(*setting, index, true))
                {
                    *setting = next;
                }
                assert!(setting.rate() > 0.0, "zero-rate setting selected");
                assert!(setting.symbol_repeat >= 1);
            }
        }
        assert_eq!(t_setting, top);
        assert_eq!(a_setting, top);
        // Everything clean: both walk back and clamp at rung 0.
        for index in 0..32 {
            for (policy, setting) in [
                (&mut threshold as &mut dyn LinkController, &mut t_setting),
                (&mut aimd, &mut a_setting),
            ] {
                if let LinkAction::Set(next) =
                    policy.observe(&observe_synthetic(*setting, index, false))
                {
                    *setting = next;
                }
            }
        }
        assert_eq!(t_setting, LinkSetting::lightest());
        assert_eq!(a_setting, LinkSetting::lightest());
    }

    /// Synthetic observation for the bandit tests, mimicking the measured
    /// channel signatures. `protected_from` is the lightest rung that
    /// survives the current weather: lighter rungs are broken (residual
    /// errors, failed decodes, low goodput), heavier rungs deliver clean
    /// payloads — but during weather (`protected_from > 0`) they visibly
    /// *absorb* it (corrected bits), which is what the regime classifier
    /// reads. Airtime is realistic: a failed window fails in roughly one
    /// clean window's time (the engine gives up fast).
    fn observe_banditland(
        setting: LinkSetting,
        index: usize,
        protected_from: usize,
    ) -> LinkObservation {
        let rung = rung_of(setting);
        let broken = rung < protected_from;
        let clean_goodput = 100.0 - rung as f64;
        let goodput = if broken {
            5.0 + 10.0 * rung as f64
        } else {
            clean_goodput
        };
        LinkObservation {
            window_index: index,
            setting,
            payload_bits: 64,
            frames_sent: 1,
            residual_ber: if broken { 0.05 } else { 0.0 },
            goodput_kbps: goodput,
            retransmissions: 0,
            decode_failures: usize::from(broken),
            corrected_bits: if protected_from > 0 { 16 } else { 0 },
            elapsed: Time::from_us((64_000.0 / clean_goodput) as u64),
        }
    }

    /// Drives the bandit through a schedule of `(windows, protected_from)`
    /// phases and returns the per-window settings.
    fn drive_bandit(policy: &mut BanditPolicy, phases: &[(usize, usize)]) -> Vec<LinkSetting> {
        let mut setting = policy.initial();
        let mut history = Vec::new();
        let mut index = 0;
        for &(windows, protected_from) in phases {
            for _ in 0..windows {
                history.push(setting);
                if let LinkAction::Set(next) =
                    policy.observe(&observe_banditland(setting, index, protected_from))
                {
                    setting = next;
                }
                index += 1;
            }
        }
        history
    }

    #[test]
    fn bandit_counts_regime_bank_flips_on_the_registry() {
        let registry = soc_sim::telemetry::Registry::new();
        let mut policy = BanditPolicy::paper_default();
        policy.attach_telemetry(&registry);
        // Calm phase, storm, calm again: the regime classifier must flip
        // into the burst bank and back, and each flip must count.
        drive_bandit(&mut policy, &[(12, 0), (12, 4), (12, 0)]);
        let flips = registry.snapshot().counter("adapt.bank_flips").unwrap();
        assert!(
            flips >= 2,
            "a storm entered and left must flip twice, counted {flips}"
        );
    }

    #[test]
    fn bandit_converges_to_the_best_rung_under_stationary_noise() {
        // Everything below Reed-Solomon is dirty, forever: the estimates
        // must converge on an RS rung and stop paying for re-visits of the
        // light rungs — the whole point of remembering per-rung goodput.
        let mut policy = BanditPolicy::paper_default();
        let history = drive_bandit(&mut policy, &[(40, 2)]);
        let rs_windows = history
            .iter()
            .filter(|s| matches!(s.code, LinkCodeKind::ReedSolomon { .. }))
            .count();
        assert!(
            rs_windows >= 32,
            "bandit must settle on RS under stationary noise, got {rs_windows}/40"
        );
        // The tail must be pure exploitation: no light-rung visits at all
        // in the final stretch once the estimates have converged.
        let tail = &history[24..];
        assert!(
            tail.iter()
                .all(|s| matches!(s.code, LinkCodeKind::ReedSolomon { .. })),
            "converged bandit must stop exploring dirty rungs: {:?}",
            tail.iter().map(|s| s.label()).collect::<Vec<_>>()
        );
        // And under a stationary *clean* channel it rides the lightest rung.
        let mut policy = BanditPolicy::paper_default();
        let history = drive_bandit(&mut policy, &[(40, 0)]);
        let light = history
            .iter()
            .filter(|s| s.code == LinkCodeKind::None)
            .count();
        assert!(
            light >= 34,
            "got {light}/40 uncoded windows on a clean channel"
        );
    }

    #[test]
    fn bandit_re_explores_after_a_phase_change() {
        // Calm -> burst -> calm, the NoiseSchedule::calm_burst shape. The
        // regime banks must carry the calm-phase conclusion across the
        // burst: after the burst ends the policy has to be back on the
        // uncoded rung within a handful of windows, not re-learn the
        // ladder from scratch.
        let mut policy = BanditPolicy::paper_default();
        let history = drive_bandit(&mut policy, &[(16, 0), (12, 2), (16, 0)]);
        // Inside the burst the policy must abandon the uncoded rung.
        let burst = &history[20..28];
        let coded_in_burst = burst
            .iter()
            .filter(|s| s.code != LinkCodeKind::None)
            .count();
        assert!(
            coded_in_burst >= 4,
            "bandit must harden during the burst: {:?}",
            burst.iter().map(|s| s.label()).collect::<Vec<_>>()
        );
        // After the burst it must re-explore and settle light again.
        let tail = &history[36..];
        let light_tail = tail.iter().filter(|s| s.code == LinkCodeKind::None).count();
        assert!(
            light_tail >= tail.len() / 2,
            "bandit must return to the uncoded rung after the burst: {:?}",
            tail.iter().map(|s| s.label()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bandit_clamps_to_the_ladder_and_never_picks_zero_rate() {
        let ladder = LinkSetting::ladder();
        let mut policy = BanditPolicy::paper_default();
        let mut setting = policy.initial();
        // Nothing survives the weather for 30 windows, then everything is
        // clean: every selected setting must be a real ladder rung with
        // positive rate.
        for index in 0..60 {
            let protected_from = if index < 30 { ladder.len() } else { 0 };
            if let LinkAction::Set(next) =
                policy.observe(&observe_banditland(setting, index, protected_from))
            {
                setting = next;
            }
            assert!(setting.rate() > 0.0, "zero-rate setting selected");
            assert!(setting.symbol_repeat >= 1);
            assert!(
                ladder.contains(&setting),
                "bandit left the ladder: {}",
                setting.label()
            );
            assert!(policy.rung() < ladder.len());
        }
    }

    #[test]
    fn bandit_reports_goodput_estimates_and_rung_model() {
        let mut policy = BanditPolicy::paper_default();
        assert!(policy.goodput_estimate().is_none(), "no evidence yet");
        assert_eq!(policy.rung_estimates().len(), LinkSetting::ladder().len());
        assert!(policy.rung_estimates().iter().all(|e| e.weight == 0.0));
        drive_bandit(&mut policy, &[(12, 0)]);
        let estimate = policy
            .goodput_estimate()
            .expect("estimate after observed windows");
        assert!(estimate > 50.0, "clean-channel estimate, got {estimate}");
        let estimates = policy.rung_estimates();
        assert_eq!(estimates[0].code, LinkCodeKind::None);
        assert!(estimates[0].weight > 0.0, "the ridden rung carries weight");
        assert!(estimates[0].goodput_kbps > 50.0);
        // Settings and order mirror the ladder.
        for (estimate, setting) in estimates.iter().zip(LinkSetting::ladder()) {
            assert_eq!(estimate.code, setting.code);
            assert_eq!(estimate.symbol_repeat, setting.symbol_repeat);
        }
    }

    #[test]
    fn retransmission_recovery_is_not_distress_but_total_decode_failure_is() {
        // A window that delivered its payload clean *through* retries must
        // not trigger a climb — on slow channels whose windows straddle
        // noise bursts that is the steady state of the heavy rungs, and
        // treating it as distress would wedge the policy at the most
        // expensive setting (see `window_is_bad`).
        let mut policy = ThresholdPolicy::paper_default();
        let recovered = LinkObservation {
            window_index: 0,
            setting: LinkSetting::lightest(),
            payload_bits: 64,
            frames_sent: 3,
            residual_ber: 0.0,
            goodput_kbps: 40.0,
            retransmissions: 2,
            decode_failures: 1,
            corrected_bits: 0,
            elapsed: Time::from_us(30),
        };
        assert!(matches!(policy.observe(&recovered), LinkAction::Hold));
        assert_eq!(policy.rung(), 0);
        // A window where *every* decode failed is distress even with the
        // residual masked by best-effort acceptance.
        let hopeless = LinkObservation {
            frames_sent: 3,
            decode_failures: 3,
            goodput_kbps: 0.0,
            ..recovered
        };
        assert!(matches!(policy.observe(&hopeless), LinkAction::Set(_)));
        assert_eq!(policy.rung(), 1);
    }
}
