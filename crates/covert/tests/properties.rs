//! Property-based tests of the covert-channel protocol and metrics layers.

use covert::prelude::*;
use proptest::prelude::*;
use soc_sim::clock::Time;

proptest! {
    /// Byte framing roundtrips for arbitrary payloads.
    #[test]
    fn bytes_to_bits_roundtrips(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let bits = bytes_to_bits(&payload);
        prop_assert_eq!(bits.len(), payload.len() * 8);
        prop_assert_eq!(bits_to_bytes(&bits), payload);
    }

    /// A transmission report's error count never exceeds its bit count, and
    /// the error rate stays within [0, 1].
    #[test]
    fn report_error_rate_is_bounded(
        sent in proptest::collection::vec(any::<bool>(), 1..128),
        flips in proptest::collection::vec(any::<bool>(), 1..128),
        elapsed_us in 1u64..10_000,
    ) {
        let received: Vec<bool> = sent
            .iter()
            .zip(flips.iter().cycle())
            .map(|(&s, &f)| s ^ f)
            .collect();
        let report = TransmissionReport::new(sent.clone(), received, Time::from_us(elapsed_us));
        prop_assert!(report.error_count() <= report.bit_count());
        prop_assert!((0.0..=1.0).contains(&report.error_rate()));
        prop_assert!(report.bandwidth_kbps() > 0.0);
        prop_assert!(report.time_per_bit().as_ps() <= Time::from_us(elapsed_us).as_ps());
    }

    /// Majority voting over unanimous observations always returns that value.
    #[test]
    fn unanimous_observations_decide_the_vote(
        slow in 0usize..=16,
        copies in 1usize..6,
    ) {
        let obs: Vec<ProbeObservation> =
            (0..copies).map(|_| ProbeObservation::new(slow, 16)).collect();
        let cfg = ClassifierConfig::paper_default();
        let expected = slow >= cfg.per_set_threshold;
        prop_assert_eq!(majority_vote(&obs, cfg), expected);
    }

    /// Adding a fully-primed observation never flips a unanimous "1" vote,
    /// and adding an idle observation never flips a unanimous "0" vote.
    #[test]
    fn vote_is_monotone_in_supporting_evidence(copies in 1usize..5) {
        let cfg = ClassifierConfig::paper_default();
        let primed = ProbeObservation::new(16, 16);
        let idle = ProbeObservation::new(0, 16);
        let mut ones: Vec<ProbeObservation> = (0..copies).map(|_| primed).collect();
        prop_assert!(majority_vote(&ones, cfg));
        ones.push(primed);
        prop_assert!(majority_vote(&ones, cfg));
        let mut zeros: Vec<ProbeObservation> = (0..copies).map(|_| idle).collect();
        prop_assert!(!majority_vote(&zeros, cfg));
        zeros.push(idle);
        prop_assert!(!majority_vote(&zeros, cfg));
    }

    /// Sample statistics honour basic order relations.
    #[test]
    fn sample_stats_are_ordered(samples in proptest::collection::vec(0.0f64..1e6, 1..64)) {
        let stats = SampleStats::from_samples(&samples);
        prop_assert!(stats.min <= stats.mean + 1e-9);
        prop_assert!(stats.mean <= stats.max + 1e-9);
        prop_assert!(stats.std_dev >= 0.0);
        prop_assert!(stats.ci95_low() <= stats.ci95_high());
        prop_assert_eq!(stats.n, samples.len());
    }

    /// The deterministic test pattern is reproducible and length-exact.
    #[test]
    fn test_pattern_is_reproducible(bits in 0usize..512, seed in any::<u64>()) {
        let a = test_pattern(bits, seed);
        let b = test_pattern(bits, seed);
        prop_assert_eq!(a.len(), bits);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Precise L3 eviction sets always honour both constraints: same L3
    /// placement as the target, different LLC set — for arbitrary targets.
    #[test]
    fn precise_pollute_sets_respect_both_constraints(target_line in 0u64..0x40_0000) {
        use soc_sim::prelude::{Soc, SocConfig, PhysAddr};
        let soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let target = PhysAddr::new(target_line * 64);
        let set = precise_l3_eviction_set(
            &soc,
            target,
            PhysAddr::new(0x8000_0000),
            128 * 1024 * 1024,
            24,
        ).unwrap();
        prop_assert_eq!(set.len(), 24);
        for a in set {
            prop_assert_eq!(
                soc.gpu_l3().placement_index(a),
                soc.gpu_l3().placement_index(target)
            );
            prop_assert_ne!(soc.llc().set_of(a), soc.llc().set_of(target));
        }
    }

    /// Address-arithmetic eviction sets contain exactly the requested number
    /// of distinct, set-pure lines.
    #[test]
    fn llc_set_addresses_are_distinct_and_pure(set_index in 0usize..2048, slice in 0usize..4, count in 1usize..24) {
        use soc_sim::llc::LlcSetId;
        use soc_sim::prelude::{Soc, SocConfig, PhysAddr};
        let soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let id = LlcSetId { slice, set: set_index };
        let addrs = addresses_in_llc_set(&soc, id, PhysAddr::new(0x4000_0000), 512 * 1024 * 1024, count).unwrap();
        prop_assert_eq!(addrs.len(), count);
        let unique: std::collections::HashSet<_> = addrs.iter().collect();
        prop_assert_eq!(unique.len(), count);
        for a in &addrs {
            prop_assert_eq!(soc.llc().set_of(*a), id);
        }
    }
}

proptest! {
    /// Reassembling a non-multiple-of-8 bit string drops exactly the
    /// trailing partial byte, and the byte-aligned prefix roundtrips.
    #[test]
    fn partial_bit_strings_roundtrip_their_aligned_prefix(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        extra in 0usize..8,
    ) {
        let mut bits = bytes_to_bits(&payload);
        for i in 0..extra {
            bits.push(i % 2 == 0);
        }
        let reassembled = bits_to_bytes(&bits);
        prop_assert_eq!(reassembled.len(), payload.len() + extra / 8);
        prop_assert_eq!(&reassembled[..payload.len()], &payload[..]);
        // And re-framing the reassembled bytes reproduces the aligned bits.
        let aligned = (bits.len() / 8) * 8;
        prop_assert_eq!(bytes_to_bits(&reassembled), bits[..aligned].to_vec());
    }

    /// The frame preamble survives the frame/deframe roundtrip for any
    /// payload, and an uncorrupted preamble always syncs.
    #[test]
    fn framing_roundtrips(payload in proptest::collection::vec(any::<bool>(), 0..96)) {
        let wire = frame_bits(&payload);
        prop_assert_eq!(wire.len(), payload.len() + FRAME_PREAMBLE.len());
        prop_assert_eq!(sync_errors(&wire), 0);
        prop_assert_eq!(deframe_bits(&wire, 0).unwrap(), payload);
    }

    /// Sync-error counting is exact under arbitrary preamble corruption.
    #[test]
    fn sync_error_count_matches_flips(flips in proptest::collection::vec(0usize..8, 0..8)) {
        let mut wire = frame_bits(&[true, false, true]);
        let distinct: std::collections::HashSet<usize> = flips.iter().copied().collect();
        for &i in &distinct {
            wire[i] = !wire[i];
        }
        prop_assert_eq!(sync_errors(&wire), distinct.len());
        let tolerant = deframe_bits(&wire, distinct.len());
        prop_assert!(tolerant.is_ok());
        if !distinct.is_empty() {
            prop_assert_eq!(deframe_bits(&wire, distinct.len() - 1), Err(distinct.len()));
        }
    }

    /// An exact 50/50 vote split always falls back to aggregate signal
    /// strength, for any redundancy level.
    #[test]
    fn tie_votes_decide_by_signal_strength(copies in 1usize..6, ways in 4usize..32) {
        let cfg = ClassifierConfig::paper_default();
        let primed = ProbeObservation::new(ways, ways);
        let idle = ProbeObservation::new(0, ways);
        let mut tie: Vec<ProbeObservation> = Vec::new();
        for _ in 0..copies {
            tie.push(primed);
            tie.push(idle);
        }
        // Aggregate slow fraction is exactly 1/2, and the tie-break counts
        // "at least half" as a 1.
        prop_assert!(majority_vote(&tie, cfg));
        prop_assert_eq!(try_majority_vote(&tie, cfg), Ok(true));
        // Weaken one primed observation below half the total and the
        // tie-break flips to 0.
        tie[0] = ProbeObservation::new(ways / 2 - 1, ways);
        if copies == 1 {
            prop_assert!(!majority_vote(&tie, cfg));
        }
    }
}

#[test]
fn empty_observations_error_instead_of_aborting_the_engine_path() {
    assert_eq!(
        try_majority_vote(&[], ClassifierConfig::paper_default()),
        Err(ChannelError::EmptyObservations)
    );
}

#[test]
fn report_shape_mismatch_errors_instead_of_aborting_the_engine_path() {
    let err =
        TransmissionReport::try_new(vec![true, false], vec![true], Time::from_us(1)).unwrap_err();
    assert_eq!(
        err,
        ChannelError::ReportShape {
            sent: 2,
            received: 1
        }
    );
    let ok = TransmissionReport::try_new(vec![true], vec![false], Time::from_us(1)).unwrap();
    assert_eq!(ok.error_count(), 1);
}

#[test]
fn all_error_transmissions_have_unit_error_rate_and_finite_bandwidth() {
    let sent = vec![true; 64];
    let received = vec![false; 64];
    let report = TransmissionReport::try_new(sent, received, Time::from_us(64)).unwrap();
    assert_eq!(report.error_rate(), 1.0);
    assert!((report.bandwidth_kbps() - 1000.0).abs() < 1e-9);
}

#[test]
fn single_sample_confidence_interval_collapses_to_the_mean() {
    let stats = SampleStats::from_samples(&[42.0]);
    assert_eq!(stats.n, 1);
    assert_eq!(stats.std_dev, 0.0);
    assert_eq!(stats.ci95_half_width, 0.0);
    assert_eq!(stats.ci95_low(), 42.0);
    assert_eq!(stats.ci95_high(), 42.0);
    assert_eq!(stats.min, 42.0);
    assert_eq!(stats.max, 42.0);
}

#[test]
fn all_errors_sample_stats_have_degenerate_spread() {
    // A sweep cell where every run decodes garbage: identical 1.0 error
    // rates must produce a zero-width interval, not NaN.
    let stats = SampleStats::from_samples(&[1.0; 8]);
    assert_eq!(stats.mean, 1.0);
    assert_eq!(stats.std_dev, 0.0);
    assert_eq!(stats.ci95_half_width, 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every link code round-trips arbitrary payloads on a clean wire, with
    /// nothing corrected and nothing detected.
    #[test]
    fn link_codes_roundtrip_identity(
        payload in proptest::collection::vec(any::<bool>(), 1..150),
    ) {
        for kind in LinkCodeKind::all() {
            let code = kind.build();
            let wire = code.encode(&payload);
            prop_assert_eq!(wire.len(), code.encoded_len(payload.len()));
            let out = code.decode(&wire);
            prop_assert!(out.payload.len() >= payload.len());
            prop_assert_eq!(&out.payload[..payload.len()], payload.as_slice());
            prop_assert_eq!(out.corrected_bits, 0);
            prop_assert_eq!(out.residual_errors, 0);
        }
    }

    /// Hamming(7,4) corrects any single flipped wire bit exactly.
    #[test]
    fn hamming_corrects_any_single_flip(
        payload in proptest::collection::vec(any::<bool>(), 1..120),
        flip_seed in any::<u64>(),
    ) {
        let code = Hamming74;
        let mut wire = code.encode(&payload);
        let flip = (flip_seed % wire.len() as u64) as usize;
        wire[flip] = !wire[flip];
        let out = code.decode(&wire);
        prop_assert_eq!(&out.payload[..payload.len()], payload.as_slice());
        prop_assert_eq!(out.corrected_bits, 1);
        prop_assert_eq!(out.residual_errors, 0);
    }

    /// CRC-8 detects any single flipped wire bit.
    #[test]
    fn crc_detects_any_single_flip(
        payload in proptest::collection::vec(any::<bool>(), 1..120),
        flip_seed in any::<u64>(),
    ) {
        let code = Crc8Code;
        let mut wire = code.encode(&payload);
        let flip = (flip_seed % wire.len() as u64) as usize;
        wire[flip] = !wire[flip];
        prop_assert!(code.decode(&wire).residual_errors > 0);
    }

    /// Reed–Solomon corrects any pattern of up to ⌊(n−k)/2⌋ corrupted
    /// symbols per codeword, for varying geometries.
    #[test]
    fn reed_solomon_corrects_up_to_t_symbol_errors(
        payload in proptest::collection::vec(any::<bool>(), 1..129),
        parity_half in 1usize..4,
        corrupt_seed in any::<u64>(),
    ) {
        let data_symbols = 8usize;
        let parity_symbols = 2 * parity_half; // t = parity_half
        let code = ReedSolomon::new(data_symbols, parity_symbols, 1);
        let mut wire = code.encode(&payload);
        let n = data_symbols + parity_symbols;
        let codewords = wire.len() / (n * 8);
        // Corrupt exactly t distinct symbols in each codeword, pseudo-
        // randomly chosen from the seed; every bit of the symbol flips.
        let mut state = corrupt_seed | 1;
        let mut corrupted = 0usize;
        for cw in 0..codewords {
            let mut chosen: Vec<usize> = Vec::new();
            while chosen.len() < parity_half {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let symbol = (state >> 33) as usize % n;
                if !chosen.contains(&symbol) {
                    chosen.push(symbol);
                }
            }
            for &symbol in &chosen {
                let start = (cw * n + symbol) * 8;
                for bit in wire.iter_mut().skip(start).take(8) {
                    *bit = !*bit;
                }
                corrupted += 1;
            }
        }
        let out = code.decode(&wire);
        prop_assert_eq!(&out.payload[..payload.len()], payload.as_slice());
        prop_assert_eq!(out.residual_errors, 0);
        prop_assert_eq!(out.corrected_bits, corrupted * 8);
    }

    /// The block interleaver is a length-preserving permutation and
    /// deinterleave is its exact inverse.
    #[test]
    fn interleaver_is_a_permutation(
        len in 1usize..200,
        depth in 1usize..12,
    ) {
        // Tag every position with a distinct pattern via an index encoding:
        // position i maps to bits of i, so any loss or duplication of a
        // position changes the multiset of decoded indices.
        let data: Vec<bool> = (0..len).map(|i| (i * 2654435761) & 64 != 0).collect();
        let wire = covert::code::interleave(&data, depth);
        prop_assert_eq!(wire.len(), len);
        // Permutation: the multiset of bits is preserved...
        let ones = |bits: &[bool]| bits.iter().filter(|&&b| b).count();
        prop_assert_eq!(ones(&wire), ones(&data));
        // ...and the inverse restores every position exactly.
        prop_assert_eq!(covert::code::deinterleave(&wire, depth), data);
    }
}
