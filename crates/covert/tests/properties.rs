//! Property-based tests of the covert-channel protocol and metrics layers.

use covert::prelude::*;
use proptest::prelude::*;
use soc_sim::clock::Time;

proptest! {
    /// Byte framing roundtrips for arbitrary payloads.
    #[test]
    fn bytes_to_bits_roundtrips(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let bits = bytes_to_bits(&payload);
        prop_assert_eq!(bits.len(), payload.len() * 8);
        prop_assert_eq!(bits_to_bytes(&bits), payload);
    }

    /// A transmission report's error count never exceeds its bit count, and
    /// the error rate stays within [0, 1].
    #[test]
    fn report_error_rate_is_bounded(
        sent in proptest::collection::vec(any::<bool>(), 1..128),
        flips in proptest::collection::vec(any::<bool>(), 1..128),
        elapsed_us in 1u64..10_000,
    ) {
        let received: Vec<bool> = sent
            .iter()
            .zip(flips.iter().cycle())
            .map(|(&s, &f)| s ^ f)
            .collect();
        let report = TransmissionReport::new(sent.clone(), received, Time::from_us(elapsed_us));
        prop_assert!(report.error_count() <= report.bit_count());
        prop_assert!((0.0..=1.0).contains(&report.error_rate()));
        prop_assert!(report.bandwidth_kbps() > 0.0);
        prop_assert!(report.time_per_bit().as_ps() <= Time::from_us(elapsed_us).as_ps());
    }

    /// Majority voting over unanimous observations always returns that value.
    #[test]
    fn unanimous_observations_decide_the_vote(
        slow in 0usize..=16,
        copies in 1usize..6,
    ) {
        let obs: Vec<ProbeObservation> =
            (0..copies).map(|_| ProbeObservation::new(slow, 16)).collect();
        let cfg = ClassifierConfig::paper_default();
        let expected = slow >= cfg.per_set_threshold;
        prop_assert_eq!(majority_vote(&obs, cfg), expected);
    }

    /// Adding a fully-primed observation never flips a unanimous "1" vote,
    /// and adding an idle observation never flips a unanimous "0" vote.
    #[test]
    fn vote_is_monotone_in_supporting_evidence(copies in 1usize..5) {
        let cfg = ClassifierConfig::paper_default();
        let primed = ProbeObservation::new(16, 16);
        let idle = ProbeObservation::new(0, 16);
        let mut ones: Vec<ProbeObservation> = (0..copies).map(|_| primed).collect();
        prop_assert!(majority_vote(&ones, cfg));
        ones.push(primed);
        prop_assert!(majority_vote(&ones, cfg));
        let mut zeros: Vec<ProbeObservation> = (0..copies).map(|_| idle).collect();
        prop_assert!(!majority_vote(&zeros, cfg));
        zeros.push(idle);
        prop_assert!(!majority_vote(&zeros, cfg));
    }

    /// Sample statistics honour basic order relations.
    #[test]
    fn sample_stats_are_ordered(samples in proptest::collection::vec(0.0f64..1e6, 1..64)) {
        let stats = SampleStats::from_samples(&samples);
        prop_assert!(stats.min <= stats.mean + 1e-9);
        prop_assert!(stats.mean <= stats.max + 1e-9);
        prop_assert!(stats.std_dev >= 0.0);
        prop_assert!(stats.ci95_low() <= stats.ci95_high());
        prop_assert_eq!(stats.n, samples.len());
    }

    /// The deterministic test pattern is reproducible and length-exact.
    #[test]
    fn test_pattern_is_reproducible(bits in 0usize..512, seed in any::<u64>()) {
        let a = test_pattern(bits, seed);
        let b = test_pattern(bits, seed);
        prop_assert_eq!(a.len(), bits);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Precise L3 eviction sets always honour both constraints: same L3
    /// placement as the target, different LLC set — for arbitrary targets.
    #[test]
    fn precise_pollute_sets_respect_both_constraints(target_line in 0u64..0x40_0000) {
        use soc_sim::prelude::{Soc, SocConfig, PhysAddr};
        let soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let target = PhysAddr::new(target_line * 64);
        let set = precise_l3_eviction_set(
            &soc,
            target,
            PhysAddr::new(0x8000_0000),
            128 * 1024 * 1024,
            24,
        ).unwrap();
        prop_assert_eq!(set.len(), 24);
        for a in set {
            prop_assert_eq!(
                soc.gpu_l3().placement_index(a),
                soc.gpu_l3().placement_index(target)
            );
            prop_assert_ne!(soc.llc().set_of(a), soc.llc().set_of(target));
        }
    }

    /// Address-arithmetic eviction sets contain exactly the requested number
    /// of distinct, set-pure lines.
    #[test]
    fn llc_set_addresses_are_distinct_and_pure(set_index in 0usize..2048, slice in 0usize..4, count in 1usize..24) {
        use soc_sim::llc::LlcSetId;
        use soc_sim::prelude::{Soc, SocConfig, PhysAddr};
        let soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let id = LlcSetId { slice, set: set_index };
        let addrs = addresses_in_llc_set(&soc, id, PhysAddr::new(0x4000_0000), 512 * 1024 * 1024, count).unwrap();
        prop_assert_eq!(addrs.len(), count);
        let unique: std::collections::HashSet<_> = addrs.iter().collect();
        prop_assert_eq!(unique.len(), count);
        for a in &addrs {
            prop_assert_eq!(soc.llc().set_of(*a), id);
        }
    }
}
