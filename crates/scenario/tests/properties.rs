//! Property-based tests of the `scenario-v1` schema: randomly generated
//! documents round-trip through the canonical serializer, equivalent
//! spellings converge to the same canonical form, and randomly corrupted
//! axis values are rejected with the exact field path of the corruption.

use proptest::prelude::*;
use scenario::{parse_scenario, scenario_to_json};

const CHANNELS: &[&str] = &["llc-prime-probe", "ring-contention"];
const NOISE_LEVELS: &[&str] = &["noiseless", "quiet", "noisy", "phased"];
const CODES: &[&str] = &["none", "crc8", "hamming74", "rs", "rs(12,8,4)"];
const POLICIES: &[&str] = &["fixed", "threshold", "aimd", "bandit"];
const NOISE_PRESETS: &[&str] = &["quiet", "none", "noisy", "calm", "burst"];

/// Non-empty subset of `items` selected by bitmask, in item order.
fn subset<'a>(mask: u8, items: &[&'a str]) -> Vec<&'a str> {
    let picked: Vec<&str> = items
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, s)| *s)
        .collect();
    if picked.is_empty() {
        vec![items[0]]
    } else {
        picked
    }
}

fn quoted_list(items: &[&str]) -> String {
    items
        .iter()
        .map(|s| format!("{s:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// JSON spelling of a u64: plain number up to 2^53, hex string beyond
/// (the schema's required encoding for values JSON doubles cannot hold).
fn json_u64(value: u64) -> String {
    if value <= (1u64 << 53) {
        value.to_string()
    } else {
        format!("\"0x{value:x}\"")
    }
}

/// A grid section exercising every declarable axis.
fn grid_section(
    channels: &[&str],
    noise: &[&str],
    codes: &[&str],
    seeds: &[u64],
    bits: Option<(usize, usize)>,
    engine: Option<&str>,
) -> String {
    let mut body = format!(
        "{{ \"kind\": \"grid\", \"channels\": [{}], \"noise\": [{}], \"codes\": [{}], \
         \"seeds\": [{}]",
        quoted_list(channels),
        quoted_list(noise),
        quoted_list(codes),
        seeds
            .iter()
            .map(|s| json_u64(*s))
            .collect::<Vec<_>>()
            .join(", "),
    );
    if let Some((quick, full)) = bits {
        body.push_str(&format!(
            ", \"bits\": {{ \"quick\": {quick}, \"full\": {full} }}"
        ));
    }
    if let Some(engine) = engine {
        body.push_str(&format!(", \"engine\": {engine:?}"));
    }
    body.push_str(" }");
    body
}

fn document(name: &str, topologies: &str, policies: &str, sweeps: &str) -> String {
    format!(
        "{{ \"schema\": \"leaky-buddies/scenario-v1\", \"name\": {name:?}, \
         \"topologies\": [{topologies}], \"policies\": [{policies}], \"sweeps\": [{sweeps}] }}"
    )
}

/// parse → serialize → parse → serialize reaches a fixed point: the
/// canonical form is stable, so the serializer and parser are exact
/// inverses on everything the document expresses.
fn assert_canonical_fixed_point(text: &str) {
    let first =
        parse_scenario(text).unwrap_or_else(|err| panic!("seed document rejected: {err}\n{text}"));
    let canonical = scenario_to_json(&first);
    let second = parse_scenario(&canonical)
        .unwrap_or_else(|err| panic!("canonical form rejected: {err}\n{canonical}"));
    prop_assert_eq!(
        scenario_to_json(&second),
        canonical,
        "canonical form is not a serializer fixed point"
    );
    prop_assert_eq!(first.name, second.name);
    prop_assert_eq!(first.topologies.len(), second.topologies.len());
    prop_assert_eq!(first.policies.len(), second.policies.len());
    prop_assert_eq!(first.sweeps.len(), second.sweeps.len());
}

proptest! {
    /// Grid sections with arbitrary axis subsets, seeds, bit counts and
    /// engine choices round-trip through the canonical serializer.
    #[test]
    fn grid_sections_round_trip(
        channel_mask in 1u8..4,
        noise_mask in 1u8..16,
        code_mask in 1u8..32,
        seeds in proptest::collection::vec(any::<u64>(), 1..4),
        quick_bits in 1usize..1000,
        full_bits in 1usize..10_000,
        with_bits in any::<bool>(),
        engine_pick in 0u8..3,
    ) {
        let engine = match engine_pick {
            0 => None,
            1 => Some("raw"),
            _ => Some("framed"),
        };
        let section = grid_section(
            &subset(channel_mask, CHANNELS),
            &subset(noise_mask, NOISE_LEVELS),
            &subset(code_mask, CODES),
            &seeds,
            with_bits.then_some((quick_bits, full_bits)),
            engine,
        );
        let text = document("grid-roundtrip", "", "", &section);
        assert_canonical_fixed_point(&text);
    }

    /// Topology overrides — LLC geometry, way partitioning, noise presets
    /// and schedules — survive the canonical round-trip. The canonical form
    /// spells every axis explicitly (no `base` reference), so this also
    /// proves base-relative and fully-explicit spellings converge.
    #[test]
    fn topology_overrides_round_trip(
        ways in 2usize..32,
        partition_num in 0usize..40,
        noise_pick in 0usize..5,
        phase_a_us in 1u64..20_000,
        phase_b_us in 1u64..20_000,
        cyclic in any::<bool>(),
        with_schedule in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // A valid partition leaves both sides at least one way; skew the
        // random draw into range and drop it entirely at 0.
        let partition = match partition_num % (ways + 2) {
            0 => String::new(),
            p if p < ways => format!(", \"partition\": {{ \"cpu_ways\": {p} }}"),
            _ => String::new(),
        };
        let schedule = if with_schedule {
            format!(
                ", \"noise_schedule\": {{ \"cyclic\": {cyclic}, \"phases\": [ \
                 {{ \"duration_us\": {phase_a_us}, \"noise\": \"calm\" }}, \
                 {{ \"duration_us\": {phase_b_us}, \"noise\": \"burst\" }} ] }}"
            )
        } else {
            String::new()
        };
        let topology = format!(
            "{{ \"name\": \"random-part\", \"summary\": \"generated\", \
             \"base\": \"kabylake-gen9\", \"llc\": {{ \"ways\": {ways} }}, \
             \"seed\": {}, \"noise\": {:?}{partition}{schedule} }}",
            json_u64(seed),
            NOISE_PRESETS[noise_pick],
        );
        let text = document("topology-roundtrip", &topology, "", "{ \"kind\": \"classic\" }");
        assert_canonical_fixed_point(&text);
    }

    /// Named policies of every family, with random tuning, round-trip.
    #[test]
    fn named_policies_round_trip(
        family in 0usize..4,
        raise in 0.0011f64..0.5,
        clear_frac in 0.01f64..1.0,
        patience in 1usize..10,
        decay_steps in 1u32..100,
        explore in 0.001f64..2.0,
    ) {
        // Derived values keep the invariants the schema enforces
        // (clear <= raise, decay in (0, 1]) while still spanning the range.
        let clear = raise * clear_frac;
        let decay = f64::from(decay_steps) / 100.0;
        let policy = match POLICIES[family] {
            "fixed" => "{ \"name\": \"p\", \"kind\": \"fixed\", \"code\": \"hamming74\" }"
                .to_string(),
            "threshold" => format!(
                "{{ \"name\": \"p\", \"kind\": \"threshold\", \"raise_ber\": {raise}, \
                 \"clear_ber\": {clear}, \"patience\": {patience} }}"
            ),
            "aimd" => format!("{{ \"name\": \"p\", \"kind\": \"aimd\", \"raise_ber\": {raise} }}"),
            _ => format!(
                "{{ \"name\": \"p\", \"kind\": \"bandit\", \"decay\": {decay}, \
                 \"explore\": {explore} }}"
            ),
        };
        let section = "{ \"kind\": \"adaptive\", \"policies\": [\"p\", \"threshold\"] }";
        let text = document("policy-roundtrip", "", &policy, section);
        assert_canonical_fixed_point(&text);
    }

    /// `"axis": "all"` and an omitted axis mean the same thing, so both
    /// spellings converge to the identical canonical document.
    #[test]
    fn all_selection_converges_to_omission(kind_pick in 0usize..2, axis_pick in 0usize..2) {
        let kind = ["coded", "adaptive"][kind_pick];
        let axis = match (kind, axis_pick) {
            ("coded", _) => "codes",
            (_, 0) => "policies",
            _ => "backends",
        };
        let spelled = document(
            "all-vs-omitted",
            "",
            "",
            &format!("{{ \"kind\": {kind:?}, \"{axis}\": \"all\" }}"),
        );
        let omitted = document("all-vs-omitted", "", "", &format!("{{ \"kind\": {kind:?} }}"));
        let spelled = parse_scenario(&spelled).expect("spelled form parses");
        let omitted = parse_scenario(&omitted).expect("omitted form parses");
        prop_assert_eq!(scenario_to_json(&spelled), scenario_to_json(&omitted));
    }

    /// A corrupted link-code label anywhere in a grid section's `codes`
    /// array is rejected, and the error names that exact element:
    /// `sweeps[0].codes[i]`.
    #[test]
    fn corrupted_code_labels_report_their_exact_path(
        code_mask in 1u8..32,
        corrupt_at_raw in any::<usize>(),
        garbage_pick in 0usize..4,
    ) {
        let mut codes: Vec<String> =
            subset(code_mask, CODES).iter().map(|s| s.to_string()).collect();
        let corrupt_at = corrupt_at_raw % codes.len();
        let garbage = ["turbo-code", "rs(", "hamming75", ""][garbage_pick];
        codes[corrupt_at] = garbage.to_string();
        let section = format!(
            "{{ \"kind\": \"grid\", \"codes\": [{}] }}",
            codes
                .iter()
                .map(|s| format!("{s:?}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let text = document("corrupted-code", "", "", &section);
        let err = parse_scenario(&text).expect_err("corrupted code label must be rejected");
        let expected = format!("sweeps[0].codes[{corrupt_at}]");
        prop_assert!(
            err.contains(&expected),
            "error {:?} does not name {:?}",
            err,
            expected
        );
    }

    /// A section referencing an undefined policy is rejected with the
    /// sweeps path, whatever the unknown name is.
    #[test]
    fn unknown_policy_references_report_the_sweeps_path(
        suffix in 1u32..1_000_000,
        position_raw in any::<usize>(),
    ) {
        let unknown = format!("nonexistent-{suffix}");
        let mut policies: Vec<String> = vec!["threshold".into(), "bandit".into()];
        let position = position_raw % (policies.len() + 1);
        policies.insert(position, unknown.clone());
        let section = format!(
            "{{ \"kind\": \"adaptive\", \"policies\": [{}] }}",
            policies
                .iter()
                .map(|s| format!("{s:?}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let text = document("unknown-policy", "", "", &section);
        let err = parse_scenario(&text).expect_err("unknown policy must be rejected");
        prop_assert!(
            err.contains("sweeps[0].policies") && err.contains(&unknown),
            "error {:?} does not carry the path and the offending name",
            err
        );
    }

    /// Zero bit counts are rejected with the exact bits field path.
    #[test]
    fn zero_bit_counts_report_their_field(quick_is_zero in any::<bool>(), other in 1usize..500) {
        let (quick, full) = if quick_is_zero { (0, other) } else { (other, 0) };
        let field = if quick_is_zero { "quick" } else { "full" };
        let section = format!(
            "{{ \"kind\": \"grid\", \"bits\": {{ \"quick\": {quick}, \"full\": {full} }} }}"
        );
        let text = document("zero-bits", "", "", &section);
        let err = parse_scenario(&text).expect_err("zero bits must be rejected");
        let expected = format!("sweeps[0].bits.{field}");
        prop_assert!(
            err.contains(&expected),
            "error {:?} does not name {:?}",
            err,
            expected
        );
    }
}
