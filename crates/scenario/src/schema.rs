//! The versioned `scenario-v1` schema.
//!
//! A scenario file is a JSON document (`"schema": "leaky-buddies/scenario-v1"`)
//! carrying three kinds of declarations:
//!
//! * **`topologies`** — named [`TopologySpec`]s over the full builder axis
//!   set (clocks, CPU cache geometry, LLC geometry/replacement/slice hash,
//!   GPU L3, fixed latencies, DRAM generation, way-partitioning, physical
//!   memory, seed, ambient noise and [`NoiseSchedule`] phase programs).
//!   A topology starts from a named `base` preset and states only deltas.
//! * **`policies`** — named adapt-policy configurations
//!   ([`PolicyParams`]): a policy family plus its ladder and knobs.
//! * **`sweeps`** — sweep sections the harness materializes into grid
//!   points: `classic` / `coded` / `adaptive` sections reproduce the
//!   built-in generators over a backend selection, and `grid` sections
//!   state an explicit backend × channel × noise × code × policy × seed
//!   cross-product.
//!
//! Every parse error is **field-path-precise**: a bad value reports the
//! JSON path of the offending field and what it held
//! (`topologies[0].llc.sets_per_slice: must be a power of two …`), and
//! unknown or duplicate fields are rejected at the path where they appear,
//! so a typo'd key can never be silently ignored.
//!
//! The parser and the canonical serializers ([`scenario_to_json`],
//! [`topology_to_json`]) are exact inverses: integers and floats round-trip
//! bit-identically (64-bit values may be written as `"0x…"` strings, floats
//! use the shortest round-trip decimal form), which the scenario crate's
//! property tests pin down via [`TopologySpec::fingerprint`].

use crate::json::{parse_json, JsonValue};
use covert::adapt::{LinkSetting, PolicyKind, PolicyParams};
use covert::code::LinkCodeKind;
use soc_sim::clock::{ClockDomain, SocClocks, Time};
use soc_sim::dram::DramTimingKind;
use soc_sim::gpu_l3::GpuL3Config;
use soc_sim::noise::{NoiseConfig, NoisePhase, NoiseSchedule};
use soc_sim::replacement::ReplacementPolicy;
use soc_sim::slice_hash::SliceHash;
use soc_sim::system::{CpuCacheConfig, LatencyConfig, LlcPartition};
use soc_sim::topology::TopologySpec;

/// Schema identifier every scenario file must carry in its `"schema"` field.
pub const SCENARIO_SCHEMA: &str = "leaky-buddies/scenario-v1";

/// Largest integer a JSON number can carry exactly (2^53). Values above it
/// must be written as `"0x…"` (or decimal) strings.
const MAX_SAFE_INTEGER: f64 = 9_007_199_254_740_992.0;

/// A parsed scenario file: named topologies, named policies and the sweep
/// sections to materialize.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (reports and logs).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// User-defined topologies, to be registered as sweep backends.
    pub topologies: Vec<NamedTopology>,
    /// User-defined adapt-policy configurations.
    pub policies: Vec<NamedPolicy>,
    /// Sweep sections, in file order.
    pub sweeps: Vec<SweepSection>,
}

impl Scenario {
    /// Looks up a scenario-defined policy by name.
    pub fn policy(&self, name: &str) -> Option<&NamedPolicy> {
        self.policies.iter().find(|p| p.name == name)
    }

    /// Looks up a scenario-defined topology by name.
    pub fn topology(&self, name: &str) -> Option<&NamedTopology> {
        self.topologies.iter().find(|t| t.name == name)
    }
}

/// A named [`TopologySpec`] a scenario registers as a sweep backend.
#[derive(Debug, Clone)]
pub struct NamedTopology {
    /// Backend registry key.
    pub name: String,
    /// One-line description (shown by `--list-backends`).
    pub summary: String,
    /// The topology itself.
    pub spec: TopologySpec,
}

/// A named adapt-policy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedPolicy {
    /// Name sweep sections reference the policy by. Must not shadow a
    /// built-in family label (`fixed`, `threshold`, `aimd`, `bandit`).
    pub name: String,
    /// The full parameter set.
    pub params: PolicyParams,
}

/// What a sweep section materializes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// The classic per-channel grid (raw engine, quiet/noisy ambient
    /// levels) — the built-in default-sweep generator.
    Classic,
    /// The framed-engine link-code comparison grid.
    Coded,
    /// The adaptive-policy grid under phased noise.
    Adaptive,
    /// An explicit backend × channel × noise × code × policy × seed
    /// cross-product.
    Grid,
}

impl SectionKind {
    /// The label used in scenario files.
    pub fn label(self) -> &'static str {
        match self {
            SectionKind::Classic => "classic",
            SectionKind::Coded => "coded",
            SectionKind::Adaptive => "adaptive",
            SectionKind::Grid => "grid",
        }
    }

    fn parse(text: &str, path: &str) -> Result<Self, String> {
        match text {
            "classic" => Ok(SectionKind::Classic),
            "coded" => Ok(SectionKind::Coded),
            "adaptive" => Ok(SectionKind::Adaptive),
            "grid" => Ok(SectionKind::Grid),
            other => Err(format!(
                "{path}: unknown section kind {other:?} (expected classic, coded, adaptive or grid)"
            )),
        }
    }
}

/// Per-section payload-size override: the bit counts used in `--quick` and
/// full runs respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionBits {
    /// Payload bits per point under `--quick`.
    pub quick: usize,
    /// Payload bits per point in a full run.
    pub full: usize,
}

/// One sweep section. `None` on an axis means "the kind's default": every
/// registered backend, the built-in bit counts, all channels, and so on —
/// which is how `scenarios/default.json` reproduces the built-in grids
/// without restating them.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSection {
    /// What the section materializes into.
    pub kind: SectionKind,
    /// Backend names (`None` = every registered backend, including the
    /// scenario's own topologies).
    pub backends: Option<Vec<String>>,
    /// Channel labels (`grid` sections only; `None` = every channel).
    pub channels: Option<Vec<String>>,
    /// Noise-level labels (`grid` sections only; `None` = quiet + noisy).
    pub noise: Option<Vec<String>>,
    /// Link codes (`coded`/`adaptive`/`grid`; `None` = the kind's default).
    pub codes: Option<Vec<LinkCodeKind>>,
    /// Policy names — built-in family labels or scenario-defined names
    /// (`adaptive`/`grid`; `None` = every built-in family).
    pub policies: Option<Vec<String>>,
    /// Payload-size override.
    pub bits: Option<SectionBits>,
    /// Simulation seeds (`grid` sections only; `None` = the default seed).
    pub seeds: Option<Vec<u64>>,
    /// Engine override for `grid` sections: `"raw"` or `"framed"`
    /// (`None` = framed when the section has codes or policies, raw
    /// otherwise).
    pub engine: Option<String>,
}

// ---------------------------------------------------------------------------
// Low-level helpers: typed access with field-path errors.
// ---------------------------------------------------------------------------

fn type_name(value: &JsonValue) -> &'static str {
    match value {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "bool",
        JsonValue::Number(_) => "number",
        JsonValue::String(_) => "string",
        JsonValue::Array(_) => "array",
        JsonValue::Object(_) => "object",
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn as_str<'a>(value: &'a JsonValue, path: &str) -> Result<&'a str, String> {
    value
        .as_str()
        .ok_or_else(|| format!("{path}: expected a string, got {}", type_name(value)))
}

fn as_array<'a>(value: &'a JsonValue, path: &str) -> Result<&'a [JsonValue], String> {
    value
        .as_array()
        .ok_or_else(|| format!("{path}: expected an array, got {}", type_name(value)))
}

fn as_bool(value: &JsonValue, path: &str) -> Result<bool, String> {
    value
        .as_bool()
        .ok_or_else(|| format!("{path}: expected true or false, got {}", type_name(value)))
}

fn as_f64(value: &JsonValue, path: &str) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("{path}: expected a number, got {}", type_name(value)))
}

/// A 64-bit unsigned integer: a JSON number (integral, `0..=2^53`) or a
/// string in decimal or `0x…` hexadecimal — the exact form for values a
/// double cannot carry (slice-hash masks, seeds).
fn as_u64(value: &JsonValue, path: &str) -> Result<u64, String> {
    match value {
        JsonValue::Number(n) => {
            if n.fract() != 0.0 || *n < 0.0 || *n > MAX_SAFE_INTEGER {
                Err(format!(
                    "{path}: expected a non-negative integer up to 2^53 \
                     (use a \"0x…\" string beyond that), got {n}"
                ))
            } else {
                Ok(*n as u64)
            }
        }
        JsonValue::String(s) => {
            let text = s.trim();
            let parsed =
                if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16)
                } else {
                    text.parse::<u64>()
                };
            parsed.map_err(|_| format!("{path}: {text:?} is not a decimal or 0x-hex integer"))
        }
        other => Err(format!(
            "{path}: expected an integer (number or \"0x…\" string), got {}",
            type_name(other)
        )),
    }
}

fn as_usize(value: &JsonValue, path: &str) -> Result<usize, String> {
    as_u64(value, path).map(|v| v as usize)
}

/// One parsed JSON object with its path, duplicate-key and unknown-key
/// checking done up front.
struct Fields<'a> {
    entries: &'a [(String, JsonValue)],
    path: String,
}

impl<'a> Fields<'a> {
    fn new(value: &'a JsonValue, path: &str, allowed: &[&str]) -> Result<Self, String> {
        let JsonValue::Object(entries) = value else {
            return Err(format!(
                "{path}: expected an object, got {}",
                type_name(value)
            ));
        };
        for (i, (key, _)) in entries.iter().enumerate() {
            if entries[..i].iter().any(|(k, _)| k == key) {
                return Err(format!("{}: duplicate field", join(path, key)));
            }
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "{}: unknown field (expected one of: {})",
                    join(path, key),
                    allowed.join(", ")
                ));
            }
        }
        Ok(Fields {
            entries,
            path: path.to_string(),
        })
    }

    fn get(&self, key: &str) -> Option<&'a JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn at(&self, key: &str) -> String {
        join(&self.path, key)
    }

    fn require(&self, key: &str) -> Result<&'a JsonValue, String> {
        self.get(key)
            .ok_or_else(|| format!("{}: missing required field", self.at(key)))
    }

    fn str_field(&self, key: &str) -> Result<Option<&'a str>, String> {
        self.get(key).map(|v| as_str(v, &self.at(key))).transpose()
    }

    fn usize_field(&self, key: &str) -> Result<Option<usize>, String> {
        self.get(key)
            .map(|v| as_usize(v, &self.at(key)))
            .transpose()
    }

    fn u64_field(&self, key: &str) -> Result<Option<u64>, String> {
        self.get(key).map(|v| as_u64(v, &self.at(key))).transpose()
    }

    fn f64_field(&self, key: &str) -> Result<Option<f64>, String> {
        self.get(key).map(|v| as_f64(v, &self.at(key))).transpose()
    }
}

// ---------------------------------------------------------------------------
// Topology parsing.
// ---------------------------------------------------------------------------

fn parse_replacement(text: &str, path: &str) -> Result<ReplacementPolicy, String> {
    match text {
        "lru" => Ok(ReplacementPolicy::Lru),
        "tree-plru" => Ok(ReplacementPolicy::TreePlru),
        "random" => Ok(ReplacementPolicy::Random),
        other => Err(format!(
            "{path}: unknown replacement policy {other:?} (expected lru, tree-plru or random)"
        )),
    }
}

fn replacement_label(policy: ReplacementPolicy) -> &'static str {
    match policy {
        ReplacementPolicy::Lru => "lru",
        ReplacementPolicy::TreePlru => "tree-plru",
        ReplacementPolicy::Random => "random",
    }
}

fn parse_noise(value: &JsonValue, path: &str) -> Result<NoiseConfig, String> {
    if let Some(preset) = value.as_str() {
        return match preset {
            "quiet" => Ok(NoiseConfig::quiet_system()),
            "none" => Ok(NoiseConfig::none()),
            "noisy" => Ok(NoiseConfig::noisy_system()),
            "calm" => Ok(NoiseConfig::calm_system()),
            "burst" => Ok(NoiseConfig::burst_system()),
            other => Err(format!(
                "{path}: unknown noise preset {other:?} \
                 (expected quiet, none, noisy, calm or burst — or an object)"
            )),
        };
    }
    let fields = Fields::new(
        value,
        path,
        &[
            "latency_jitter_ps",
            "spurious_eviction_prob",
            "timer_rate_jitter",
        ],
    )?;
    let base = NoiseConfig::none();
    Ok(NoiseConfig {
        latency_jitter_ps: fields
            .f64_field("latency_jitter_ps")?
            .unwrap_or(base.latency_jitter_ps),
        spurious_eviction_prob: fields
            .f64_field("spurious_eviction_prob")?
            .unwrap_or(base.spurious_eviction_prob),
        timer_rate_jitter: fields
            .f64_field("timer_rate_jitter")?
            .unwrap_or(base.timer_rate_jitter),
    })
}

fn parse_noise_schedule(value: &JsonValue, path: &str) -> Result<Option<NoiseSchedule>, String> {
    if matches!(value, JsonValue::Null) {
        return Ok(None);
    }
    let fields = Fields::new(value, path, &["cyclic", "phases"])?;
    let cyclic = fields
        .get("cyclic")
        .map(|v| as_bool(v, &fields.at("cyclic")))
        .transpose()?
        .unwrap_or(true);
    let phases_value = fields.require("phases")?;
    let phases_path = fields.at("phases");
    let items = as_array(phases_value, &phases_path)?;
    let mut phases = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let phase_path = format!("{phases_path}[{i}]");
        let phase = Fields::new(item, &phase_path, &["duration_ps", "duration_us", "noise"])?;
        let duration = match (phase.get("duration_ps"), phase.get("duration_us")) {
            (Some(_), Some(_)) => {
                return Err(format!(
                    "{phase_path}: give duration_ps or duration_us, not both"
                ))
            }
            (Some(ps), None) => Time::from_ps(as_u64(ps, &phase.at("duration_ps"))?),
            (None, Some(us)) => Time::from_us(as_u64(us, &phase.at("duration_us"))?),
            (None, None) => {
                return Err(format!(
                    "{phase_path}: missing duration (duration_ps or duration_us)"
                ))
            }
        };
        let noise = parse_noise(phase.require("noise")?, &phase.at("noise"))?;
        phases.push(NoisePhase {
            duration,
            config: noise,
        });
    }
    if !phases.iter().any(|p| p.duration > Time::ZERO) {
        return Err(format!(
            "{phases_path}: a noise schedule needs at least one phase with positive duration"
        ));
    }
    Ok(Some(NoiseSchedule::new(phases, cyclic)))
}

fn parse_slice_hash(value: &JsonValue, path: &str) -> Result<SliceHash, String> {
    if let Some(preset) = value.as_str() {
        return match preset {
            "kabylake-4slice" => Ok(SliceHash::kaby_lake_i7_7700k()),
            "icelake-8slice" => Ok(SliceHash::icelake_8slice()),
            other => Err(format!(
                "{path}: unknown slice-hash preset {other:?} \
                 (expected kabylake-4slice or icelake-8slice — or {{\"masks\": […]}})"
            )),
        };
    }
    let fields = Fields::new(value, path, &["masks"])?;
    let masks_value = fields.require("masks")?;
    let masks_path = fields.at("masks");
    let items = as_array(masks_value, &masks_path)?;
    if items.is_empty() || items.len() > 6 {
        return Err(format!(
            "{masks_path}: a slice hash takes between 1 and 6 masks, got {}",
            items.len()
        ));
    }
    let mut masks = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let mask = as_u64(item, &format!("{masks_path}[{i}]"))?;
        if mask == 0 {
            return Err(format!("{masks_path}[{i}]: a hash mask cannot be zero"));
        }
        masks.push(mask);
    }
    Ok(SliceHash::new(masks))
}

fn parse_gpu_l3(value: &JsonValue, path: &str, base: &GpuL3Config) -> Result<GpuL3Config, String> {
    if let Some(preset) = value.as_str() {
        return match preset {
            "gen9" => Ok(GpuL3Config::gen9()),
            "gen11" => Ok(GpuL3Config::gen11_class()),
            other => Err(format!(
                "{path}: unknown GPU L3 preset {other:?} (expected gen9 or gen11 — or an object)"
            )),
        };
    }
    let fields = Fields::new(
        value,
        path,
        &[
            "banks",
            "sub_banks",
            "sets_per_bank",
            "data_capacity_bytes",
            "replacement",
        ],
    )?;
    Ok(GpuL3Config {
        banks: fields.usize_field("banks")?.unwrap_or(base.banks),
        sub_banks: fields.usize_field("sub_banks")?.unwrap_or(base.sub_banks),
        sets_per_bank: fields
            .usize_field("sets_per_bank")?
            .unwrap_or(base.sets_per_bank),
        data_capacity_bytes: fields
            .u64_field("data_capacity_bytes")?
            .unwrap_or(base.data_capacity_bytes),
        policy: fields
            .str_field("replacement")?
            .map(|s| parse_replacement(s, &fields.at("replacement")))
            .transpose()?
            .unwrap_or(base.policy),
    })
}

fn parse_clocks(value: &JsonValue, path: &str, base: &SocClocks) -> Result<SocClocks, String> {
    let fields = Fields::new(
        value,
        path,
        &[
            "cpu_ghz",
            "gpu_ghz",
            "ring_ghz",
            "cpu_ps_per_cycle",
            "gpu_ps_per_cycle",
            "ring_ps_per_cycle",
        ],
    )?;
    let domain = |name: &str, current: &ClockDomain| -> Result<ClockDomain, String> {
        let ghz_key = format!("{name}_ghz");
        let ps_key = format!("{name}_ps_per_cycle");
        match (fields.get(&ghz_key), fields.get(&ps_key)) {
            (Some(_), Some(_)) => Err(format!(
                "{}: give {ghz_key} or {ps_key}, not both",
                join(&fields.path, &ps_key)
            )),
            (Some(ghz), None) => {
                let path = fields.at(&ghz_key);
                let value = as_f64(ghz, &path)?;
                if value > 0.0 {
                    Ok(ClockDomain::from_ghz(name, value))
                } else {
                    Err(format!("{path}: frequency must be positive, got {value}"))
                }
            }
            (None, Some(ps)) => {
                let path = fields.at(&ps_key);
                let value = as_f64(ps, &path)?;
                if value > 0.0 {
                    Ok(ClockDomain::from_picos_per_cycle(name, value))
                } else {
                    Err(format!("{path}: cycle time must be positive, got {value}"))
                }
            }
            (None, None) => Ok(current.clone()),
        }
    };
    Ok(SocClocks {
        cpu: domain("cpu", &base.cpu)?,
        gpu: domain("gpu", &base.gpu)?,
        ring: domain("ring", &base.ring)?,
    })
}

fn parse_latencies(
    value: &JsonValue,
    path: &str,
    base: &LatencyConfig,
) -> Result<LatencyConfig, String> {
    let fields = Fields::new(
        value,
        path,
        &[
            "cpu_l1_hit_ps",
            "cpu_l2_hit_ps",
            "llc_array_ps",
            "gpu_l3_hit_ps",
            "gpu_l3_lookup_ps",
            "gpu_uncore_extra_ps",
            "clflush_ps",
            "gpu_issue_overhead_ps",
        ],
    )?;
    let time = |key: &str, current: Time| -> Result<Time, String> {
        Ok(fields.u64_field(key)?.map_or(current, Time::from_ps))
    };
    Ok(LatencyConfig {
        cpu_l1_hit: time("cpu_l1_hit_ps", base.cpu_l1_hit)?,
        cpu_l2_hit: time("cpu_l2_hit_ps", base.cpu_l2_hit)?,
        llc_array: time("llc_array_ps", base.llc_array)?,
        gpu_l3_hit: time("gpu_l3_hit_ps", base.gpu_l3_hit)?,
        gpu_l3_lookup: time("gpu_l3_lookup_ps", base.gpu_l3_lookup)?,
        gpu_uncore_extra: time("gpu_uncore_extra_ps", base.gpu_uncore_extra)?,
        clflush: time("clflush_ps", base.clflush)?,
        gpu_issue_overhead: time("gpu_issue_overhead_ps", base.gpu_issue_overhead)?,
    })
}

fn base_topology(name: &str, path: &str) -> Result<TopologySpec, String> {
    match name {
        "kabylake-gen9" => Ok(TopologySpec::kaby_lake_gen9()),
        "gen11-class" => Ok(TopologySpec::gen11_class()),
        "icelake-8slice" => Ok(TopologySpec::icelake_8slice()),
        other => Err(format!(
            "{path}: unknown base preset {other:?} \
             (expected kabylake-gen9, gen11-class or icelake-8slice)"
        )),
    }
}

const TOPOLOGY_FIELDS: &[&str] = &[
    "name",
    "summary",
    "base",
    "clocks",
    "cpu_cores",
    "cpu_caches",
    "llc",
    "slice_hash",
    "gpu_l3",
    "latencies",
    "dram",
    "partition",
    "phys_mem_bytes",
    "seed",
    "noise",
    "noise_schedule",
];

/// Parses one topology object (`base` preset + overrides) into a
/// [`TopologySpec`], without the surrounding name/summary.
fn parse_topology_spec(fields: &Fields<'_>) -> Result<TopologySpec, String> {
    let mut spec = match fields.str_field("base")? {
        Some(base) => base_topology(base, &fields.at("base"))?,
        None => TopologySpec::kaby_lake_gen9(),
    };
    if let Some(clocks) = fields.get("clocks") {
        let parsed = parse_clocks(clocks, &fields.at("clocks"), spec.clocks())?;
        spec = spec.with_clocks(parsed);
    }
    if let Some(cores) = fields.usize_field("cpu_cores")? {
        spec = spec.with_cpu_cores(cores);
    }
    if let Some(caches) = fields.get("cpu_caches") {
        let path = fields.at("cpu_caches");
        let cache_fields =
            Fields::new(caches, &path, &["l1_sets", "l1_ways", "l2_sets", "l2_ways"])?;
        let base = *spec.cpu_caches();
        spec = spec.with_cpu_caches(CpuCacheConfig {
            l1_sets: cache_fields.usize_field("l1_sets")?.unwrap_or(base.l1_sets),
            l1_ways: cache_fields.usize_field("l1_ways")?.unwrap_or(base.l1_ways),
            l2_sets: cache_fields.usize_field("l2_sets")?.unwrap_or(base.l2_sets),
            l2_ways: cache_fields.usize_field("l2_ways")?.unwrap_or(base.l2_ways),
        });
    }
    if let Some(llc) = fields.get("llc") {
        let path = fields.at("llc");
        let llc_fields = Fields::new(
            llc,
            &path,
            &["sets_per_slice", "ways", "replacement", "port_service_ps"],
        )?;
        let sets = llc_fields
            .usize_field("sets_per_slice")?
            .unwrap_or_else(|| spec.llc_sets_per_slice());
        let ways = llc_fields
            .usize_field("ways")?
            .unwrap_or_else(|| spec.llc_ways());
        spec = spec.with_llc_geometry(sets, ways);
        if let Some(replacement) = llc_fields.str_field("replacement")? {
            spec = spec.with_llc_policy(parse_replacement(
                replacement,
                &llc_fields.at("replacement"),
            )?);
        }
        if let Some(port) = llc_fields.u64_field("port_service_ps")? {
            spec = spec.with_llc_port_service_ps(port);
        }
    }
    if let Some(hash) = fields.get("slice_hash") {
        spec = spec.with_slice_hash(parse_slice_hash(hash, &fields.at("slice_hash"))?);
    }
    if let Some(gpu_l3) = fields.get("gpu_l3") {
        let parsed = parse_gpu_l3(gpu_l3, &fields.at("gpu_l3"), spec.gpu_l3())?;
        spec = spec.with_gpu_l3(parsed);
    }
    if let Some(latencies) = fields.get("latencies") {
        let parsed = parse_latencies(latencies, &fields.at("latencies"), spec.latencies())?;
        spec = spec.with_latencies(parsed);
    }
    if let Some(dram) = fields.str_field("dram")? {
        spec = spec.with_dram(match dram {
            "ddr4" => DramTimingKind::Ddr4,
            "ddr5" => DramTimingKind::Ddr5,
            other => {
                return Err(format!(
                    "{}: unknown DRAM generation {other:?} (expected ddr4 or ddr5)",
                    fields.at("dram")
                ))
            }
        });
    }
    if let Some(partition) = fields.get("partition") {
        let path = fields.at("partition");
        match partition {
            JsonValue::Null => {
                // Explicitly no partition — already the builder default, and
                // `with_partition` has no inverse; base presets without a
                // partition stay partition-free.
                if spec.llc_partition().is_some() {
                    return Err(format!(
                        "{path}: cannot clear the base preset's partition \
                         (start from an unpartitioned base instead)"
                    ));
                }
            }
            other => {
                let part_fields = Fields::new(other, &path, &["cpu_ways"])?;
                let cpu_ways = as_usize(
                    part_fields.require("cpu_ways")?,
                    &part_fields.at("cpu_ways"),
                )?;
                spec = spec.with_partition(LlcPartition { cpu_ways });
            }
        }
    }
    if let Some(bytes) = fields.u64_field("phys_mem_bytes")? {
        spec = spec.with_phys_mem(bytes);
    }
    if let Some(seed) = fields.u64_field("seed")? {
        spec = spec.with_seed(seed);
    }
    if let Some(noise) = fields.get("noise") {
        spec = spec.with_noise(parse_noise(noise, &fields.at("noise"))?);
    }
    if let Some(schedule) = fields.get("noise_schedule") {
        if let Some(parsed) = parse_noise_schedule(schedule, &fields.at("noise_schedule"))? {
            spec = spec.with_noise_schedule(parsed);
        }
    }
    Ok(spec)
}

fn parse_named_topology(value: &JsonValue, path: &str) -> Result<NamedTopology, String> {
    let fields = Fields::new(value, path, TOPOLOGY_FIELDS)?;
    let name = as_str(fields.require("name")?, &fields.at("name"))?;
    if name.trim().is_empty() {
        return Err(format!("{}: must not be empty", fields.at("name")));
    }
    let summary = fields.str_field("summary")?.unwrap_or("").to_string();
    let spec = parse_topology_spec(&fields)?;
    spec.validate()
        .map_err(|message| format!("{path}.{message}"))?;
    Ok(NamedTopology {
        name: name.to_string(),
        summary,
        spec,
    })
}

// ---------------------------------------------------------------------------
// Policy parsing.
// ---------------------------------------------------------------------------

fn parse_link_setting(value: &JsonValue, path: &str) -> Result<LinkSetting, String> {
    if let Some(code) = value.as_str() {
        let kind = LinkCodeKind::parse(code).map_err(|e| format!("{path}: {e}"))?;
        return Ok(LinkSetting::new(kind, 1));
    }
    let fields = Fields::new(value, path, &["code", "repeat"])?;
    let code = as_str(fields.require("code")?, &fields.at("code"))?;
    let kind = LinkCodeKind::parse(code).map_err(|e| format!("{}: {e}", fields.at("code")))?;
    let repeat = fields.usize_field("repeat")?.unwrap_or(1);
    if repeat == 0 {
        return Err(format!(
            "{}: the symbol-repeat factor must be at least 1",
            fields.at("repeat")
        ));
    }
    Ok(LinkSetting::new(kind, repeat))
}

fn parse_ladder(fields: &Fields<'_>) -> Result<Vec<LinkSetting>, String> {
    let Some(ladder_value) = fields.get("ladder") else {
        return Ok(LinkSetting::ladder());
    };
    let path = fields.at("ladder");
    let items = as_array(ladder_value, &path)?;
    if items.is_empty() {
        return Err(format!("{path}: ladder needs at least one setting"));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| parse_link_setting(item, &format!("{path}[{i}]")))
        .collect()
}

fn parse_named_policy(value: &JsonValue, path: &str) -> Result<NamedPolicy, String> {
    let fields = Fields::new(
        value,
        path,
        &[
            "name",
            "kind",
            "ladder",
            "code",
            "repeat",
            "raise_ber",
            "clear_ber",
            "patience",
            "decay",
            "explore",
        ],
    )?;
    let name = as_str(fields.require("name")?, &fields.at("name"))?;
    if name.trim().is_empty() {
        return Err(format!("{}: must not be empty", fields.at("name")));
    }
    if PolicyKind::ALL.iter().any(|k| k.label() == name) {
        return Err(format!(
            "{}: {name:?} shadows a built-in policy family; pick another name",
            fields.at("name")
        ));
    }
    let kind_text = as_str(fields.require("kind")?, &fields.at("kind"))?;
    let kind = PolicyKind::parse(kind_text).map_err(|e| format!("{}: {e}", fields.at("kind")))?;
    let applicable: &[&str] = match kind {
        PolicyKind::Fixed => &["name", "kind", "code", "repeat"],
        PolicyKind::Threshold => &[
            "name",
            "kind",
            "ladder",
            "raise_ber",
            "clear_ber",
            "patience",
        ],
        PolicyKind::Aimd => &["name", "kind", "ladder", "raise_ber"],
        PolicyKind::Bandit => &["name", "kind", "ladder", "decay", "explore"],
    };
    for (key, _) in fields.entries {
        if !applicable.contains(&key.as_str()) {
            return Err(format!(
                "{}: not a parameter of the {:?} policy family (it takes: {})",
                fields.at(key),
                kind.label(),
                applicable[2..].join(", ")
            ));
        }
    }
    let params = match kind {
        PolicyKind::Fixed => {
            let code = fields
                .str_field("code")?
                .map(|s| LinkCodeKind::parse(s).map_err(|e| format!("{}: {e}", fields.at("code"))))
                .transpose()?
                .unwrap_or(LinkCodeKind::None);
            let repeat = fields.usize_field("repeat")?.unwrap_or(1);
            PolicyParams::Fixed {
                setting: LinkSetting::new(code, repeat.max(1)),
            }
        }
        PolicyKind::Threshold => PolicyParams::Threshold {
            ladder: parse_ladder(&fields)?,
            raise_ber: fields.f64_field("raise_ber")?.unwrap_or(0.03),
            clear_ber: fields.f64_field("clear_ber")?.unwrap_or(0.004),
            patience: fields.usize_field("patience")?.unwrap_or(2),
        },
        PolicyKind::Aimd => PolicyParams::Aimd {
            ladder: parse_ladder(&fields)?,
            raise_ber: fields.f64_field("raise_ber")?.unwrap_or(0.03),
        },
        PolicyKind::Bandit => PolicyParams::Bandit {
            ladder: parse_ladder(&fields)?,
            decay: fields.f64_field("decay")?.unwrap_or(0.98),
            explore: fields.f64_field("explore")?.unwrap_or(0.08),
        },
    };
    params.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(NamedPolicy {
        name: name.to_string(),
        params,
    })
}

// ---------------------------------------------------------------------------
// Sweep-section parsing.
// ---------------------------------------------------------------------------

/// A selection field: absent or `"all"` means `None` (the kind's default),
/// an array of strings is an explicit list.
fn parse_selection(fields: &Fields<'_>, key: &str) -> Result<Option<Vec<String>>, String> {
    let Some(value) = fields.get(key) else {
        return Ok(None);
    };
    let path = fields.at(key);
    if let Some(text) = value.as_str() {
        return if text == "all" {
            Ok(None)
        } else {
            Err(format!(
                "{path}: expected \"all\" or an array of names, got {text:?}"
            ))
        };
    }
    let items = as_array(value, &path)?;
    if items.is_empty() {
        return Err(format!("{path}: an explicit list must not be empty"));
    }
    let mut names = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let name = as_str(item, &format!("{path}[{i}]"))?;
        if name.trim().is_empty() {
            return Err(format!("{path}[{i}]: must not be empty"));
        }
        names.push(name.to_string());
    }
    Ok(Some(names))
}

fn parse_sweep_section(
    value: &JsonValue,
    path: &str,
    policy_names: &[String],
) -> Result<SweepSection, String> {
    let fields = Fields::new(
        value,
        path,
        &[
            "kind", "backends", "channels", "noise", "codes", "policies", "bits", "seeds", "engine",
        ],
    )?;
    let kind_text = as_str(fields.require("kind")?, &fields.at("kind"))?;
    let kind = SectionKind::parse(kind_text, &fields.at("kind"))?;
    // Axes that only make sense on some section kinds are rejected on the
    // others, with the path of the stray field.
    let grid_only: &[&str] = &["channels", "noise", "seeds", "engine"];
    if kind != SectionKind::Grid {
        for key in grid_only {
            if fields.get(key).is_some() {
                return Err(format!(
                    "{}: only grid sections take an explicit {key} axis \
                     ({} sections use the built-in generator's)",
                    fields.at(key),
                    kind.label()
                ));
            }
        }
    }
    if kind == SectionKind::Classic {
        for key in ["codes", "policies"] {
            if fields.get(key).is_some() {
                return Err(format!(
                    "{}: classic sections run the raw engine (uncoded, no policy); \
                     use a coded, adaptive or grid section",
                    fields.at(key)
                ));
            }
        }
    }
    if kind == SectionKind::Coded && fields.get("policies").is_some() {
        return Err(format!(
            "{}: coded sections compare fixed codes; use an adaptive or grid section",
            fields.at("policies")
        ));
    }
    let backends = parse_selection(&fields, "backends")?;
    let channels = parse_selection(&fields, "channels")?;
    let noise = parse_selection(&fields, "noise")?;
    let codes = match parse_selection(&fields, "codes")? {
        None => None,
        Some(labels) => {
            let path = fields.at("codes");
            let mut kinds = Vec::with_capacity(labels.len());
            for (i, label) in labels.iter().enumerate() {
                kinds.push(LinkCodeKind::parse(label).map_err(|e| format!("{path}[{i}]: {e}"))?);
            }
            Some(kinds)
        }
    };
    let policies = parse_selection(&fields, "policies")?;
    if let Some(policies) = &policies {
        let path = fields.at("policies");
        for (i, name) in policies.iter().enumerate() {
            let builtin = PolicyKind::ALL.iter().any(|k| k.label() == name.as_str());
            if !builtin && !policy_names.contains(name) {
                let mut known: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.label()).collect();
                known.extend(policy_names.iter().map(String::as_str));
                return Err(format!(
                    "{path}[{i}]: unknown policy {name:?} (known: {})",
                    known.join(", ")
                ));
            }
        }
    }
    let bits = match fields.get("bits") {
        None => None,
        Some(value) => {
            let path = fields.at("bits");
            let bits_fields = Fields::new(value, &path, &["quick", "full"])?;
            let quick = as_usize(bits_fields.require("quick")?, &bits_fields.at("quick"))?;
            let full = as_usize(bits_fields.require("full")?, &bits_fields.at("full"))?;
            if quick == 0 {
                return Err(format!(
                    "{}: bit counts must be at least 1",
                    bits_fields.at("quick")
                ));
            }
            if full == 0 {
                return Err(format!(
                    "{}: bit counts must be at least 1",
                    bits_fields.at("full")
                ));
            }
            Some(SectionBits { quick, full })
        }
    };
    let seeds = match fields.get("seeds") {
        None => None,
        Some(value) => {
            let path = fields.at("seeds");
            let items = as_array(value, &path)?;
            if items.is_empty() {
                return Err(format!("{path}: an explicit seed list must not be empty"));
            }
            let mut seeds = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                seeds.push(as_u64(item, &format!("{path}[{i}]"))?);
            }
            Some(seeds)
        }
    };
    let engine = match fields.str_field("engine")? {
        None => None,
        Some(text @ ("raw" | "framed")) => Some(text.to_string()),
        Some(other) => {
            return Err(format!(
                "{}: unknown engine {other:?} (expected raw or framed)",
                fields.at("engine")
            ))
        }
    };
    Ok(SweepSection {
        kind,
        backends,
        channels,
        noise,
        codes,
        policies,
        bits,
        seeds,
        engine,
    })
}

// ---------------------------------------------------------------------------
// Whole-document parsing.
// ---------------------------------------------------------------------------

/// Parses and validates a `scenario-v1` document.
///
/// # Errors
///
/// Returns a field-path-precise message: JSON syntax errors carry the byte
/// offset, everything above that the dotted path of the offending field
/// (`topologies[0].llc.ways: …`).
pub fn parse_scenario(text: &str) -> Result<Scenario, String> {
    let doc = parse_json(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let fields = Fields::new(
        &doc,
        "",
        &[
            "schema",
            "name",
            "description",
            "topologies",
            "policies",
            "sweeps",
        ],
    )?;
    let schema = as_str(fields.require("schema")?, "schema")?;
    if schema != SCENARIO_SCHEMA {
        return Err(format!(
            "schema: expected {SCENARIO_SCHEMA:?}, got {schema:?}"
        ));
    }
    let name = as_str(fields.require("name")?, "name")?;
    if name.trim().is_empty() {
        return Err("name: must not be empty".to_string());
    }
    let description = fields.str_field("description")?.unwrap_or("").to_string();

    let mut topologies = Vec::new();
    if let Some(value) = fields.get("topologies") {
        for (i, item) in as_array(value, "topologies")?.iter().enumerate() {
            let topology = parse_named_topology(item, &format!("topologies[{i}]"))?;
            if topologies
                .iter()
                .any(|t: &NamedTopology| t.name == topology.name)
            {
                return Err(format!(
                    "topologies[{i}].name: duplicate topology name {:?}",
                    topology.name
                ));
            }
            topologies.push(topology);
        }
    }

    let mut policies: Vec<NamedPolicy> = Vec::new();
    if let Some(value) = fields.get("policies") {
        for (i, item) in as_array(value, "policies")?.iter().enumerate() {
            let policy = parse_named_policy(item, &format!("policies[{i}]"))?;
            if policies.iter().any(|p| p.name == policy.name) {
                return Err(format!(
                    "policies[{i}].name: duplicate policy name {:?}",
                    policy.name
                ));
            }
            policies.push(policy);
        }
    }
    let policy_names: Vec<String> = policies.iter().map(|p| p.name.clone()).collect();

    let mut sweeps = Vec::new();
    if let Some(value) = fields.get("sweeps") {
        for (i, item) in as_array(value, "sweeps")?.iter().enumerate() {
            sweeps.push(parse_sweep_section(
                item,
                &format!("sweeps[{i}]"),
                &policy_names,
            )?);
        }
    }

    Ok(Scenario {
        name: name.to_string(),
        description,
        topologies,
        policies,
        sweeps,
    })
}

// ---------------------------------------------------------------------------
// Canonical serialization.
// ---------------------------------------------------------------------------

fn num(value: impl Into<f64>) -> JsonValue {
    JsonValue::Number(value.into())
}

fn usize_num(value: usize) -> JsonValue {
    JsonValue::Number(value as f64)
}

/// A `u64` as JSON: a plain number when a double carries it exactly, a
/// `"0x…"` string otherwise.
fn u64_value(value: u64) -> JsonValue {
    if (value as f64) <= MAX_SAFE_INTEGER && (value as f64) as u64 == value {
        JsonValue::Number(value as f64)
    } else {
        JsonValue::String(format!("{value:#x}"))
    }
}

fn string(value: &str) -> JsonValue {
    JsonValue::String(value.to_string())
}

fn object(entries: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn noise_to_json(noise: &NoiseConfig) -> JsonValue {
    object(vec![
        ("latency_jitter_ps", num(noise.latency_jitter_ps)),
        ("spurious_eviction_prob", num(noise.spurious_eviction_prob)),
        ("timer_rate_jitter", num(noise.timer_rate_jitter)),
    ])
}

/// Canonical JSON form of a [`TopologySpec`]: every axis written explicitly
/// (no `base` reference), so parsing it back reproduces the spec
/// bit-identically regardless of preset defaults.
pub fn topology_to_json(spec: &TopologySpec) -> JsonValue {
    let clocks = spec.clocks();
    let caches = spec.cpu_caches();
    let gpu_l3 = spec.gpu_l3();
    let lat = spec.latencies();
    let mut entries = vec![
        (
            "clocks",
            object(vec![
                ("cpu_ps_per_cycle", num(clocks.cpu.picos_per_cycle())),
                ("gpu_ps_per_cycle", num(clocks.gpu.picos_per_cycle())),
                ("ring_ps_per_cycle", num(clocks.ring.picos_per_cycle())),
            ]),
        ),
        ("cpu_cores", usize_num(spec.cpu_cores())),
        (
            "cpu_caches",
            object(vec![
                ("l1_sets", usize_num(caches.l1_sets)),
                ("l1_ways", usize_num(caches.l1_ways)),
                ("l2_sets", usize_num(caches.l2_sets)),
                ("l2_ways", usize_num(caches.l2_ways)),
            ]),
        ),
        (
            "llc",
            object(vec![
                ("sets_per_slice", usize_num(spec.llc_sets_per_slice())),
                ("ways", usize_num(spec.llc_ways())),
                ("replacement", string(replacement_label(spec.llc_policy()))),
                ("port_service_ps", u64_value(spec.llc_port_service_ps())),
            ]),
        ),
        (
            "slice_hash",
            object(vec![(
                "masks",
                JsonValue::Array(
                    spec.slice_hash()
                        .masks()
                        .iter()
                        .map(|m| JsonValue::String(format!("{m:#x}")))
                        .collect(),
                ),
            )]),
        ),
        (
            "gpu_l3",
            object(vec![
                ("banks", usize_num(gpu_l3.banks)),
                ("sub_banks", usize_num(gpu_l3.sub_banks)),
                ("sets_per_bank", usize_num(gpu_l3.sets_per_bank)),
                ("data_capacity_bytes", u64_value(gpu_l3.data_capacity_bytes)),
                ("replacement", string(replacement_label(gpu_l3.policy))),
            ]),
        ),
        (
            "latencies",
            object(vec![
                ("cpu_l1_hit_ps", u64_value(lat.cpu_l1_hit.as_ps())),
                ("cpu_l2_hit_ps", u64_value(lat.cpu_l2_hit.as_ps())),
                ("llc_array_ps", u64_value(lat.llc_array.as_ps())),
                ("gpu_l3_hit_ps", u64_value(lat.gpu_l3_hit.as_ps())),
                ("gpu_l3_lookup_ps", u64_value(lat.gpu_l3_lookup.as_ps())),
                (
                    "gpu_uncore_extra_ps",
                    u64_value(lat.gpu_uncore_extra.as_ps()),
                ),
                ("clflush_ps", u64_value(lat.clflush.as_ps())),
                (
                    "gpu_issue_overhead_ps",
                    u64_value(lat.gpu_issue_overhead.as_ps()),
                ),
            ]),
        ),
        (
            "dram",
            string(match spec.dram() {
                DramTimingKind::Ddr4 => "ddr4",
                DramTimingKind::Ddr5 => "ddr5",
            }),
        ),
        (
            "partition",
            match spec.llc_partition() {
                Some(partition) => object(vec![("cpu_ways", usize_num(partition.cpu_ways))]),
                None => JsonValue::Null,
            },
        ),
        ("phys_mem_bytes", u64_value(spec.phys_mem_bytes())),
        ("seed", JsonValue::String(format!("{:#x}", spec.seed()))),
        ("noise", noise_to_json(spec.noise())),
    ];
    entries.push((
        "noise_schedule",
        match spec.noise_schedule() {
            None => JsonValue::Null,
            Some(schedule) => object(vec![
                ("cyclic", JsonValue::Bool(schedule.is_cyclic())),
                (
                    "phases",
                    JsonValue::Array(
                        schedule
                            .phases()
                            .iter()
                            .map(|phase| {
                                object(vec![
                                    ("duration_ps", u64_value(phase.duration.as_ps())),
                                    ("noise", noise_to_json(&phase.config)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        },
    ));
    object(entries)
}

fn link_setting_to_json(setting: &LinkSetting) -> JsonValue {
    object(vec![
        ("code", string(&setting.code.label())),
        ("repeat", usize_num(setting.symbol_repeat)),
    ])
}

fn ladder_to_json(ladder: &[LinkSetting]) -> JsonValue {
    JsonValue::Array(ladder.iter().map(link_setting_to_json).collect())
}

fn policy_to_json(policy: &NamedPolicy) -> JsonValue {
    let mut entries = vec![
        ("name", string(&policy.name)),
        ("kind", string(policy.params.kind().label())),
    ];
    match &policy.params {
        PolicyParams::Fixed { setting } => {
            entries.push(("code", string(&setting.code.label())));
            entries.push(("repeat", usize_num(setting.symbol_repeat)));
        }
        PolicyParams::Threshold {
            ladder,
            raise_ber,
            clear_ber,
            patience,
        } => {
            entries.push(("ladder", ladder_to_json(ladder)));
            entries.push(("raise_ber", num(*raise_ber)));
            entries.push(("clear_ber", num(*clear_ber)));
            entries.push(("patience", usize_num(*patience)));
        }
        PolicyParams::Aimd { ladder, raise_ber } => {
            entries.push(("ladder", ladder_to_json(ladder)));
            entries.push(("raise_ber", num(*raise_ber)));
        }
        PolicyParams::Bandit {
            ladder,
            decay,
            explore,
        } => {
            entries.push(("ladder", ladder_to_json(ladder)));
            entries.push(("decay", num(*decay)));
            entries.push(("explore", num(*explore)));
        }
    }
    object(entries)
}

fn names_array(names: &[String]) -> JsonValue {
    JsonValue::Array(names.iter().map(|n| string(n)).collect())
}

fn section_to_json(section: &SweepSection) -> JsonValue {
    let mut entries = vec![("kind", string(section.kind.label()))];
    if let Some(backends) = &section.backends {
        entries.push(("backends", names_array(backends)));
    }
    if let Some(channels) = &section.channels {
        entries.push(("channels", names_array(channels)));
    }
    if let Some(noise) = &section.noise {
        entries.push(("noise", names_array(noise)));
    }
    if let Some(codes) = &section.codes {
        entries.push((
            "codes",
            JsonValue::Array(codes.iter().map(|c| string(&c.label())).collect()),
        ));
    }
    if let Some(policies) = &section.policies {
        entries.push(("policies", names_array(policies)));
    }
    if let Some(bits) = &section.bits {
        entries.push((
            "bits",
            object(vec![
                ("quick", usize_num(bits.quick)),
                ("full", usize_num(bits.full)),
            ]),
        ));
    }
    if let Some(seeds) = &section.seeds {
        entries.push((
            "seeds",
            JsonValue::Array(seeds.iter().map(|s| u64_value(*s)).collect()),
        ));
    }
    if let Some(engine) = &section.engine {
        entries.push(("engine", string(engine)));
    }
    object(entries)
}

/// Canonical JSON document for a [`Scenario`] — the exact inverse of
/// [`parse_scenario`].
pub fn scenario_to_json(scenario: &Scenario) -> String {
    let topologies = JsonValue::Array(
        scenario
            .topologies
            .iter()
            .map(|t| {
                let mut entries = vec![
                    ("name".to_string(), string(&t.name)),
                    ("summary".to_string(), string(&t.summary)),
                ];
                let JsonValue::Object(spec_entries) = topology_to_json(&t.spec) else {
                    unreachable!("topology_to_json returns an object");
                };
                entries.extend(spec_entries);
                JsonValue::Object(entries)
            })
            .collect(),
    );
    let doc = object(vec![
        ("schema", string(SCENARIO_SCHEMA)),
        ("name", string(&scenario.name)),
        ("description", string(&scenario.description)),
        ("topologies", topologies),
        (
            "policies",
            JsonValue::Array(scenario.policies.iter().map(policy_to_json).collect()),
        ),
        (
            "sweeps",
            JsonValue::Array(scenario.sweeps.iter().map(section_to_json).collect()),
        ),
    ]);
    doc.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra: &str) -> String {
        format!(
            "{{\"schema\":\"{SCENARIO_SCHEMA}\",\"name\":\"t\"{}{extra}}}",
            if extra.is_empty() { "" } else { "," }
        )
    }

    #[test]
    fn minimal_scenario_parses() {
        let scenario = parse_scenario(&minimal("")).unwrap();
        assert_eq!(scenario.name, "t");
        assert!(scenario.topologies.is_empty());
        assert!(scenario.policies.is_empty());
        assert!(scenario.sweeps.is_empty());
    }

    #[test]
    fn schema_field_is_enforced() {
        let err = parse_scenario("{\"schema\":\"nope\",\"name\":\"t\"}").unwrap_err();
        assert!(err.starts_with("schema:"), "{err}");
        let err = parse_scenario("{\"name\":\"t\"}").unwrap_err();
        assert_eq!(err, "schema: missing required field");
        let err = parse_scenario("{").unwrap_err();
        assert!(err.starts_with("not valid JSON:"), "{err}");
    }

    #[test]
    fn unknown_and_duplicate_fields_report_their_path() {
        let err = parse_scenario(&minimal("\"scheme\":1")).unwrap_err();
        assert!(err.starts_with("scheme: unknown field"), "{err}");
        let err =
            parse_scenario(&minimal("\"topologies\":[{\"name\":\"a\",\"sed\":1}]")).unwrap_err();
        assert!(err.starts_with("topologies[0].sed: unknown field"), "{err}");
        let err = parse_scenario(&minimal("\"name\":\"again\"")).unwrap_err();
        assert_eq!(err, "name: duplicate field");
    }

    #[test]
    fn topology_overrides_apply_on_the_base_preset() {
        let scenario = parse_scenario(&minimal(
            "\"topologies\":[{\"name\":\"kabylake-12way\",\"summary\":\"s\",\
             \"base\":\"kabylake-gen9\",\"llc\":{\"ways\":12},\"seed\":\"0x2a\"}]",
        ))
        .unwrap();
        let spec = &scenario.topologies[0].spec;
        assert_eq!(spec.llc_ways(), 12);
        assert_eq!(spec.llc_sets_per_slice(), 2048);
        assert_eq!(spec.seed(), 0x2a);
        assert_eq!(scenario.topology("kabylake-12way").unwrap().summary, "s");
    }

    #[test]
    fn invalid_topologies_report_the_field_path() {
        let err = parse_scenario(&minimal(
            "\"topologies\":[{\"name\":\"broken\",\"llc\":{\"sets_per_slice\":1000}}]",
        ))
        .unwrap_err();
        assert!(
            err.starts_with("topologies[0].llc.sets_per_slice:"),
            "{err}"
        );
        assert!(err.contains("power of two"), "{err}");
        assert!(err.contains("1000"), "{err}");
        let err = parse_scenario(&minimal(
            "\"topologies\":[{\"name\":\"b\",\"dram\":\"ddr3\"}]",
        ))
        .unwrap_err();
        assert!(err.starts_with("topologies[0].dram:"), "{err}");
    }

    #[test]
    fn noise_schedules_parse_with_presets_and_durations() {
        let scenario = parse_scenario(&minimal(
            "\"topologies\":[{\"name\":\"stormy\",\"noise_schedule\":{\"cyclic\":true,\
             \"phases\":[{\"duration_us\":60,\"noise\":\"calm\"},\
             {\"duration_us\":20,\"noise\":{\"latency_jitter_ps\":9000,\
             \"spurious_eviction_prob\":0.12,\"timer_rate_jitter\":0.15}}]}}]",
        ))
        .unwrap();
        let schedule = scenario.topologies[0].spec.noise_schedule().unwrap();
        assert_eq!(schedule.phases().len(), 2);
        assert!(schedule.is_cyclic());
        assert_eq!(schedule.phases()[0].config, NoiseConfig::calm_system());
        assert_eq!(schedule.phases()[1].config, NoiseConfig::burst_system());
        // All-zero-duration schedules are rejected with the phases path.
        let err = parse_scenario(&minimal(
            "\"topologies\":[{\"name\":\"z\",\"noise_schedule\":{\
             \"phases\":[{\"duration_ps\":0,\"noise\":\"calm\"}]}}]",
        ))
        .unwrap_err();
        assert!(
            err.starts_with("topologies[0].noise_schedule.phases:"),
            "{err}"
        );
    }

    #[test]
    fn policies_parse_and_reject_shadowing_and_misfit_parameters() {
        let scenario = parse_scenario(&minimal(
            "\"policies\":[{\"name\":\"storm\",\"kind\":\"threshold\",\
             \"raise_ber\":0.05,\"patience\":3}]",
        ))
        .unwrap();
        let policy = scenario.policy("storm").unwrap();
        assert_eq!(
            policy.params,
            PolicyParams::Threshold {
                ladder: LinkSetting::ladder(),
                raise_ber: 0.05,
                clear_ber: 0.004,
                patience: 3,
            }
        );
        let err = parse_scenario(&minimal(
            "\"policies\":[{\"name\":\"bandit\",\"kind\":\"bandit\"}]",
        ))
        .unwrap_err();
        assert!(err.contains("shadows a built-in"), "{err}");
        let err = parse_scenario(&minimal(
            "\"policies\":[{\"name\":\"p\",\"kind\":\"aimd\",\"decay\":0.5}]",
        ))
        .unwrap_err();
        assert!(err.starts_with("policies[0].decay:"), "{err}");
        let err = parse_scenario(&minimal(
            "\"policies\":[{\"name\":\"p\",\"kind\":\"threshold\",\
             \"raise_ber\":0.001,\"clear_ber\":0.01}]",
        ))
        .unwrap_err();
        assert!(err.contains("hysteresis band is inverted"), "{err}");
    }

    #[test]
    fn sweep_sections_validate_kind_axes_and_policy_references() {
        let scenario = parse_scenario(&minimal(
            "\"policies\":[{\"name\":\"storm\",\"kind\":\"bandit\"}],\
             \"sweeps\":[{\"kind\":\"classic\"},\
             {\"kind\":\"adaptive\",\"policies\":[\"bandit\",\"storm\"]},\
             {\"kind\":\"grid\",\"backends\":[\"kabylake-gen9\"],\
              \"channels\":[\"llc-gpu-to-cpu\"],\"noise\":[\"quiet\"],\
              \"codes\":[\"hamming74\"],\"seeds\":[7,\"0x83\"],\
              \"bits\":{\"quick\":32,\"full\":96},\"engine\":\"framed\"}]",
        ))
        .unwrap();
        assert_eq!(scenario.sweeps.len(), 3);
        assert_eq!(scenario.sweeps[0].kind, SectionKind::Classic);
        assert_eq!(
            scenario.sweeps[1].policies.as_deref(),
            Some(&["bandit".to_string(), "storm".to_string()][..])
        );
        let grid = &scenario.sweeps[2];
        assert_eq!(grid.codes.as_deref(), Some(&[LinkCodeKind::Hamming74][..]));
        assert_eq!(grid.seeds.as_deref(), Some(&[7, 0x83][..]));
        assert_eq!(
            grid.bits,
            Some(SectionBits {
                quick: 32,
                full: 96
            })
        );

        let err = parse_scenario(&minimal(
            "\"sweeps\":[{\"kind\":\"classic\",\"codes\":[\"crc8\"]}]",
        ))
        .unwrap_err();
        assert!(err.starts_with("sweeps[0].codes:"), "{err}");
        let err = parse_scenario(&minimal("\"sweeps\":[{\"kind\":\"coded\",\"seeds\":[1]}]"))
            .unwrap_err();
        assert!(err.starts_with("sweeps[0].seeds:"), "{err}");
        let err = parse_scenario(&minimal(
            "\"sweeps\":[{\"kind\":\"adaptive\",\"policies\":[\"genie\"]}]",
        ))
        .unwrap_err();
        assert!(err.starts_with("sweeps[0].policies[0]:"), "{err}");
        assert!(err.contains("storm") || err.contains("bandit"), "{err}");
    }

    #[test]
    fn canonical_serialization_round_trips_topologies_bit_exactly() {
        let original = TopologySpec::icelake_8slice()
            .with_llc_geometry(1024, 12)
            .with_llc_port_service_ps(1_250)
            .with_partition(LlcPartition { cpu_ways: 5 })
            .with_noise(NoiseConfig::calm_system())
            .with_noise_schedule(NoiseSchedule::calm_burst(Time::from_us(40)))
            .with_seed(0xDEAD_BEEF_F00D_u64);
        let scenario = Scenario {
            name: "round".to_string(),
            description: String::new(),
            topologies: vec![NamedTopology {
                name: "custom".to_string(),
                summary: "round trip".to_string(),
                spec: original.clone(),
            }],
            policies: vec![NamedPolicy {
                name: "storm".to_string(),
                params: PolicyParams::Bandit {
                    ladder: LinkSetting::ladder(),
                    decay: 0.9,
                    explore: 0.25,
                },
            }],
            sweeps: vec![SweepSection {
                kind: SectionKind::Grid,
                backends: Some(vec!["custom".to_string()]),
                channels: Some(vec!["llc-gpu-to-cpu".to_string()]),
                noise: None,
                codes: Some(vec![LinkCodeKind::rs_default()]),
                policies: Some(vec!["storm".to_string()]),
                bits: Some(SectionBits {
                    quick: 16,
                    full: 64,
                }),
                seeds: Some(vec![7, u64::MAX]),
                engine: Some("framed".to_string()),
            }],
        };
        let json = scenario_to_json(&scenario);
        let reparsed = parse_scenario(&json).unwrap();
        assert_eq!(
            reparsed.topologies[0].spec.fingerprint(),
            original.fingerprint()
        );
        assert_eq!(reparsed.policies, scenario.policies);
        assert_eq!(reparsed.sweeps, scenario.sweeps);
        // Fixed point: serializing the reparsed scenario is byte-identical.
        assert_eq!(scenario_to_json(&reparsed), json);
    }

    #[test]
    fn u64_values_round_trip_through_strings_beyond_2_53() {
        let spec = TopologySpec::kaby_lake_gen9().with_seed(u64::MAX);
        let json = topology_to_json(&spec).to_json();
        assert!(json.contains("0xffffffffffffffff"), "{json}");
        let err = as_u64(&JsonValue::Number(1e16), "seed").unwrap_err();
        assert!(err.contains("2^53"), "{err}");
        assert_eq!(as_u64(&JsonValue::String("0x2A".into()), "x"), Ok(42));
        assert_eq!(as_u64(&JsonValue::String("42".into()), "x"), Ok(42));
    }
}
