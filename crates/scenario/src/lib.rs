//! Declarative scenario files for the Leaky Buddies reproduction.
//!
//! Two layers live here, both usable below the bench crate:
//!
//! - [`json`] — the workspace's hand-rolled JSON writer/parser (the offline
//!   build has no serde). Extracted from `bench::json` so every crate can
//!   read and write the same documents; `bench` re-exports it for
//!   compatibility.
//! - [`schema`] — the versioned `scenario-v1` schema: named
//!   [`TopologySpec`](soc_sim::prelude::TopologySpec)s, noise schedules,
//!   sweep-grid sections and adapt-policy ladders, parsed with
//!   field-path-precise errors (`topologies[2].llc.ways: …`) so a typo in a
//!   scenario file points at the offending field, not at a byte offset.
//!
//! The `repro` binary loads scenario files at startup (`--scenario <file>`),
//! registers their topologies into the backend registry and materializes
//! their sweep sections; `scenarios/default.json` in the repository root is
//! the built-in default grid expressed in this schema.

#![warn(missing_docs)]

pub mod json;
pub mod schema;

pub use json::{escape, number, parse_json, JsonValue};
pub use schema::{
    parse_scenario, scenario_to_json, topology_to_json, NamedPolicy, NamedTopology, Scenario,
    SectionBits, SectionKind, SweepSection, SCENARIO_SCHEMA,
};
