//! The workspace's hand-rolled JSON layer: a writer-side escape/number pair
//! and a small recursive-descent parser into [`JsonValue`].
//!
//! The offline workspace builds with no serde, so every JSON document in
//! the repository — sweep rows, metrics, baselines, timelines, scenario
//! files — goes through these helpers. The module started life inside
//! `bench::json` (which still re-exports it) and moved here so crates below
//! the bench layer, the [`crate::schema`] parser first among them, can use
//! the same reader and writer.

use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (quotes not included).
/// Shared with `bench::tracefile`, whose header line carries the same
/// caller-controlled strings (registry keys, labels).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number; non-finite values become `null`.
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".into()
    }
}

/// A parsed JSON value — the reading half of the workspace's hand-rolled
/// serialization (the offline build has no serde). Objects preserve key
/// order as written. Used by the CI baseline checker, the resume cache, the
/// scenario-file loader and the schema round-trip tests, so the documents
/// the writers emit are guarded by an actual parser rather than substring
/// checks.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value this
    /// schema writes).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON. Numbers print through the
    /// same shortest-round-trip formatting the writers use, so a parse →
    /// serialize trip is value-preserving (if not always byte-identical to
    /// hand-formatted input).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => out.push_str(&number(*n)),
            JsonValue::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error, or
/// trailing non-whitespace after the document.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos < parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct JsonParser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("unexpected end of input at byte {}", self.pos))
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(other),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        let start = self.pos;
        self.pos += 1;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let next = rest
                .iter()
                .position(|&b| b == b'"' || b == b'\\')
                .ok_or_else(|| format!("unterminated string at byte {start}"))?;
            out.push_str(
                std::str::from_utf8(&rest[..next])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {}", self.pos))?,
            );
            self.pos += next;
            if self.bytes[self.pos] == b'"' {
                self.pos += 1;
                return Ok(out);
            }
            // Escape sequence.
            let escape = self
                .bytes
                .get(self.pos + 1)
                .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
            self.pos += 2;
            match escape {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'u' => {
                    let hex = self
                        .bytes
                        .get(self.pos..self.pos + 4)
                        .and_then(|h| std::str::from_utf8(h).ok())
                        .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
                    self.pos += 4;
                    // The writer never emits surrogate pairs (it escapes only
                    // control characters); unpaired surrogates map to the
                    // replacement character rather than failing the parse.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => {
                    return Err(format!(
                        "unknown escape '\\{}' at byte {}",
                        char::from(*other),
                        self.pos
                    ))
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn parser_handles_values_escapes_and_errors() {
        let value =
            parse_json(r#"{"a":[1,-2.5,1e3],"b":"x\n\"A","c":null,"d":[true,false],"e":{}}"#)
                .expect("parses");
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap(),
            &[
                JsonValue::Number(1.0),
                JsonValue::Number(-2.5),
                JsonValue::Number(1000.0)
            ]
        );
        assert_eq!(value.get("b").unwrap().as_str(), Some("x\n\"A"));
        assert_eq!(value.get("c"), Some(&JsonValue::Null));
        assert_eq!(value.get("d").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(value.get("e"), Some(&JsonValue::Object(vec![])));
        assert!(value.get("missing").is_none());
        for broken in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse_json(broken).is_err(), "{broken:?} must not parse");
        }
    }
}
