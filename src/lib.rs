//! # leaky-buddies — reproduction of *Leaky Buddies: Cross-Component Covert
//! Channels on Integrated CPU-GPU Systems* (ISCA 2021)
//!
//! This root crate simply re-exports the four workspace crates so examples
//! and downstream users can depend on a single name:
//!
//! * [`soc_sim`] — the timing simulator of the Kaby Lake + Gen9 SoC
//!   (sliced LLC, GPU L3, SLM, ring interconnect, clock domains);
//! * [`gpu_exec`] — the integrated-GPU execution model (work-group dispatch,
//!   wavefronts, the custom SLM counter timer);
//! * [`cpu_exec`] — the CPU-side attacker primitives (timed loads, `clflush`,
//!   pointer-chase buffers);
//! * [`covert`] — the paper's contribution: reverse engineering, the LLC
//!   Prime+Probe channel and the ring-contention channel, plus evaluation
//!   metrics.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and the
//! hardware-substitution argument, and `EXPERIMENTS.md` for paper-vs-measured
//! results of every figure.
//!
//! ```
//! use leaky_buddies::prelude::*;
//!
//! let mut channel = LlcChannel::new(LlcChannelConfig::paper_default())?;
//! let report = channel.transmit(&bytes_to_bits(b"hi"));
//! assert_eq!(report.bit_count(), 16);
//! # Ok::<(), ChannelError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use covert;
pub use cpu_exec;
pub use gpu_exec;
pub use soc_sim;

/// One-stop prelude re-exporting the preludes of every workspace crate.
pub mod prelude {
    pub use covert::prelude::*;
    pub use cpu_exec::prelude::*;
    pub use gpu_exec::prelude::*;
    pub use soc_sim::prelude::*;
}
