//! The self-interference hazard of Section III-D: the GPU's L3 eviction
//! ("pollute") addresses share the target's L3 placement bits, but if they
//! also fall into the target's **LLC** set they evict the very lines the
//! channel is trying to observe, destroying the signal. The paper's precise
//! construction therefore requires pollute addresses to live in *other* LLC
//! sets; these tests demonstrate both the hazard and the fix.

use leaky_buddies::prelude::*;

/// Builds a "naive" pollute set that conflicts with the target in the L3
/// *and* (wrongly) in the LLC: addresses that share all 17 low bits.
fn naive_pollute(soc: &Soc, target: PhysAddr, count: usize) -> Vec<PhysAddr> {
    let llc = soc.llc();
    let l3 = soc.gpu_l3();
    let mut out = Vec::new();
    let mut candidate = target.value() + (1 << 17);
    while out.len() < count {
        let a = PhysAddr::new(candidate);
        if l3.placement_index(a) == l3.placement_index(target)
            && llc.set_of(a) == llc.set_of(target)
        {
            out.push(a);
        }
        candidate += 1 << 17;
    }
    out
}

#[test]
fn naive_pollute_set_evicts_the_target_from_the_llc_too() {
    let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
    let mut gpu = GpuKernel::launch_attack_kernel();
    let target = PhysAddr::new(0x123_0000);
    gpu.load(&mut soc, target);
    assert!(soc.llc().contains(target));

    // Walking a same-LLC-set pollute buffer (more lines than the LLC has
    // ways) kicks the target out of the LLC — self-interference.
    let pollute = naive_pollute(&soc, target, soc.llc().config().ways + 4);
    for _ in 0..2 {
        for &a in &pollute {
            gpu.load(&mut soc, a);
        }
    }
    assert!(
        !soc.llc().contains(target),
        "naive pollute set must demonstrate the self-interference hazard"
    );
}

#[test]
fn precise_pollute_set_preserves_the_llc_copy() {
    let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
    let mut gpu = GpuKernel::launch_attack_kernel();
    let target = PhysAddr::new(0x123_0000);
    gpu.load(&mut soc, target);

    let pollute = precise_l3_eviction_set(
        &soc,
        target,
        PhysAddr::new(0x4000_0000),
        256 * 1024 * 1024,
        soc.gpu_l3().ways() * 5,
    )
    .expect("pollute pool");
    for &a in &pollute {
        gpu.load(&mut soc, a);
    }
    assert!(!soc.gpu_l3().contains(target), "target must leave the L3");
    assert!(soc.llc().contains(target), "target must stay in the LLC");
}

#[test]
fn llc_only_strategy_also_respects_the_constraint() {
    // Even the weaker "LLC knowledge only" strategy never aliases the
    // communication set (it just needs more addresses overall).
    let soc = Soc::new(SocConfig::kaby_lake_noiseless());
    let target = PhysAddr::new(0xABC_0040);
    for strategy in [
        L3EvictionStrategy::LlcKnowledgeOnly,
        L3EvictionStrategy::PreciseL3,
    ] {
        let pollute = build_pollute_set(
            &soc,
            strategy,
            target,
            PhysAddr::new(0x8000_0000),
            256 * 1024 * 1024,
        )
        .expect("pollute set");
        assert!(
            pollute
                .iter()
                .all(|a| soc.llc().set_of(*a) != soc.llc().set_of(target)),
            "{:?} produced an address aliasing the target's LLC set",
            strategy
        );
    }
}
