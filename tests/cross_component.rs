//! Cross-crate integration tests of the SoC substrate properties the attacks
//! rely on: inclusive/non-inclusive behaviour, SVM address sharing, and the
//! contention visible on the ring when CPU and GPU traffic overlaps.

use leaky_buddies::prelude::*;

#[test]
fn svm_lets_the_gpu_reuse_cpu_derived_eviction_sets() {
    let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
    let mut space = soc.create_process();
    space.share_with_gpu();
    let buf = soc.alloc(&mut space, 1 << 30, PageKind::Huge).unwrap();
    let base = space.translate(buf.base).unwrap();

    // Derive an eviction set on the CPU side by address arithmetic.
    let target_set = soc.llc().set_of(base);
    let ways = soc.llc().config().ways;
    let eviction_set = addresses_in_llc_set(&soc, target_set, base, 1 << 30, ways).unwrap();

    // The GPU translates the same virtual addresses to the same physical
    // addresses, so the set is valid from the GPU too.
    let kernel = GpuKernel::launch_attack_kernel();
    for (pa, offset) in eviction_set.iter().zip(0u64..) {
        let va = VirtAddr::new(buf.base.value() + (pa.value() - base.value()));
        assert_eq!(
            kernel.translate(&space, va).unwrap(),
            *pa,
            "offset {offset}"
        );
    }

    // And walking it from the GPU evicts a CPU-resident victim.
    let mut cpu = CpuThread::pinned(0);
    let mut gpu = GpuKernel::launch_attack_kernel();
    let victim = eviction_set[0];
    let others: Vec<PhysAddr> =
        soc.llc()
            .enumerate_set_addresses(target_set, PhysAddr::new(0x2000_0000), ways);
    cpu.load(&mut soc, victim);
    let (_, evicted) = validate_set_from_gpu(
        &mut cpu,
        &mut gpu,
        &mut soc,
        victim,
        &others,
        CPU_MISS_THRESHOLD_CYCLES,
    );
    assert!(evicted);
}

#[test]
fn clflush_cannot_purge_the_gpu_l3() {
    // The asymmetric inclusiveness at the heart of Section III-D, exercised
    // through the public execution-model APIs.
    let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
    let mut cpu = CpuThread::pinned(0);
    let mut gpu = GpuKernel::launch_attack_kernel();
    let line = PhysAddr::new(0x66_0000);

    gpu.load(&mut soc, line);
    cpu.synchronize_to(gpu.now());
    cpu.load(&mut soc, line);
    cpu.clflush(&mut soc, line);

    assert!(!soc.llc().contains(line));
    gpu.synchronize_to(cpu.now());
    let outcome = gpu.load(&mut soc, line);
    assert_eq!(outcome.level, HitLevel::GpuL3);

    // The CPU caches, in contrast, *are* under the inclusive LLC: evicting
    // the line from the LLC back-invalidates them.
    cpu.load(&mut soc, line);
    let set = soc.llc().set_of(line);
    let conflicts = soc.llc().enumerate_set_addresses(
        set,
        PhysAddr::new(0x3000_0000),
        soc.llc().config().ways + 2,
    );
    for &c in &conflicts {
        gpu.load(&mut soc, c);
    }
    assert!(!soc.llc().contains(line));
    assert!(!soc.in_cpu_private_caches(line));
}

#[test]
fn concurrent_gpu_traffic_slows_cpu_llc_accesses() {
    // The physical effect behind the contention channel, measured end to end
    // through the execution models rather than the channel abstraction.
    let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
    let mut cpu = CpuThread::pinned(0);
    let mut gpu = GpuKernel::launch_attack_kernel();

    // Warm 256 CPU lines and 1024 GPU lines into the LLC (disjoint regions).
    let cpu_lines: Vec<PhysAddr> = (0..256u64)
        .map(|i| PhysAddr::new(0x1000_0000 + i * 64))
        .collect();
    let gpu_lines: Vec<PhysAddr> = (0..1024u64)
        .map(|i| PhysAddr::new(0x2000_0000 + i * 4096))
        .collect();
    for &a in &cpu_lines {
        cpu.load(&mut soc, a);
        cpu.clflush(&mut soc, a);
        cpu.load(&mut soc, a); // back in LLC, and in L1/L2
    }
    gpu.synchronize_to(cpu.now());
    gpu.parallel_load(&mut soc, &gpu_lines);
    cpu.synchronize_to(gpu.now());

    // Evict from the private caches so every probe reaches the LLC.
    for &a in &cpu_lines {
        cpu.clflush(&mut soc, a);
    }
    let mut warm = CpuThread::pinned(1);
    warm.synchronize_to(cpu.now());
    for &a in &cpu_lines {
        warm.load(&mut soc, a);
    }
    cpu.synchronize_to(warm.now());
    gpu.synchronize_to(warm.now());

    // Quiet pass.
    let quiet_start = cpu.now();
    for &a in &cpu_lines[..128] {
        cpu.load(&mut soc, a);
    }
    let quiet = cpu.now() - quiet_start;

    // Contended pass: the GPU streams its buffer at the same time.
    gpu.synchronize_to(cpu.now());
    let contended_start = cpu.now();
    let mut gpu_cursor = 0usize;
    for &a in &cpu_lines[128..] {
        if gpu_cursor + 16 <= gpu_lines.len() && gpu.now() <= cpu.now() {
            gpu.parallel_load(&mut soc, &gpu_lines[gpu_cursor..gpu_cursor + 16]);
            gpu_cursor += 16;
        }
        cpu.load(&mut soc, a);
    }
    let contended = cpu.now() - contended_start;

    assert!(
        contended > quiet,
        "contended pass ({contended}) must be slower than the quiet pass ({quiet})"
    );
    assert!(soc.contention_snapshot().ring_contention_ratio() > 0.0);
}
