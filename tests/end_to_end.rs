//! End-to-end integration tests spanning every crate of the workspace:
//! full message transfer over both covert channels on the simulated SoC.

use leaky_buddies::prelude::*;

/// A noiseless SoC plus a disabled desynchronization model gives a fully
/// deterministic channel; any bit error would be a protocol bug.
fn noiseless_llc(direction: Direction) -> LlcChannel {
    let config = LlcChannelConfig {
        soc: SocConfig::kaby_lake_noiseless(),
        ..LlcChannelConfig::paper_default().with_direction(direction)
    };
    let mut channel = LlcChannel::new(config).expect("channel setup");
    channel.set_desync_model(DesyncModel {
        mismatch_weight: 0.0,
        timer_corruption: 0.0,
        floor: 0.0,
    });
    channel
}

#[test]
fn gpu_to_cpu_message_arrives_intact_on_a_noiseless_system() {
    let mut channel = noiseless_llc(Direction::GpuToCpu);
    let message = b"cross-component covert channel";
    let report = channel.transmit(&bytes_to_bits(message));
    assert_eq!(report.error_count(), 0);
    assert_eq!(bits_to_bytes(&report.received), message.to_vec());
}

#[test]
fn cpu_to_gpu_message_arrives_intact_on_a_noiseless_system() {
    let mut channel = noiseless_llc(Direction::CpuToGpu);
    let message = b"reply";
    let report = channel.transmit(&bytes_to_bits(message));
    assert_eq!(report.error_count(), 0);
    assert_eq!(bits_to_bytes(&report.received), message.to_vec());
}

#[test]
fn llc_channel_on_the_quiet_system_matches_the_papers_regime() {
    // Quiet-system noise + the calibrated desynchronization model: the paper
    // reports ~120 kb/s at ~2% error for this configuration; we require the
    // same order of magnitude and a single-digit error rate.
    let mut channel = LlcChannel::new(LlcChannelConfig::paper_default()).expect("channel setup");
    let report = channel.transmit(&test_pattern(600, 99));
    assert!(
        report.bandwidth_kbps() > 40.0 && report.bandwidth_kbps() < 400.0,
        "bandwidth {} kb/s out of the expected regime",
        report.bandwidth_kbps()
    );
    assert!(
        report.error_rate() < 0.08,
        "error rate {}",
        report.error_rate()
    );
}

#[test]
fn contention_channel_beats_the_llc_channel_bandwidth() {
    let bits = test_pattern(300, 5);
    let mut llc = LlcChannel::new(LlcChannelConfig::paper_default()).expect("llc setup");
    let llc_report = llc.transmit(&bits);
    let mut contention =
        ContentionChannel::new(ContentionChannelConfig::paper_default()).expect("contention setup");
    let contention_report = contention.transmit(&bits);
    assert!(
        contention_report.bandwidth_kbps() > llc_report.bandwidth_kbps() * 1.5,
        "contention {} kb/s should clearly beat LLC {} kb/s",
        contention_report.bandwidth_kbps(),
        llc_report.bandwidth_kbps()
    );
    assert!(contention_report.error_rate() <= llc_report.error_rate() + 0.02);
}

#[test]
fn channels_do_not_require_shared_memory_between_spy_and_trojan() {
    // The spy's and trojan's pre-agreed sets are derived independently (no
    // shared buffers); verify the roles use disjoint LLC sets and the
    // channel still works.
    let channel = noiseless_llc(Direction::GpuToCpu);
    let mut all_sets = Vec::new();
    for role in SetRole::ALL {
        all_sets.extend(channel.agreed_sets(role));
    }
    let unique: std::collections::HashSet<_> = all_sets.iter().collect();
    assert_eq!(unique.len(), all_sets.len());
}

#[test]
fn redundancy_and_direction_trends_match_figure_8() {
    let bits = test_pattern(500, 77);
    let run = |direction: Direction, sets: usize| {
        let mut ch = LlcChannel::new(
            LlcChannelConfig::paper_default()
                .with_direction(direction)
                .with_sets_per_role(sets)
                .with_seed(123 + sets as u64),
        )
        .expect("setup");
        ch.transmit(&bits)
    };
    let one = run(Direction::GpuToCpu, 1);
    let two = run(Direction::GpuToCpu, 2);
    // Error drops with redundancy, bandwidth drops slightly.
    assert!(two.error_rate() <= one.error_rate());
    assert!(two.bandwidth_kbps() < one.bandwidth_kbps());
    // The CPU->GPU direction is noisier (heavier custom-timer use).
    let reverse = run(Direction::CpuToGpu, 2);
    assert!(reverse.error_rate() >= two.error_rate());
}
