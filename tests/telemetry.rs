//! Workspace-level telemetry integration tests: the per-thread
//! registry-merge discipline, per-point metric isolation across the
//! parallel sweep runner, and the disabled-telemetry overhead guard against
//! the committed CI baseline.

use bench::{default_grid_for, Baseline, ChannelKind, SweepRunner, DEFAULT_TOLERANCE};
use soc_sim::prelude::{MetricsSnapshot, Registry};

/// Registries are single-writer by contract (each sweep worker owns its
/// point's registry; bumps are plain load + store pairs, not locked
/// read-modify-writes). Concurrency comes from giving every thread its own
/// registry and merging the snapshots — which must not lose a single
/// counter increment or histogram sample.
#[test]
fn per_thread_registries_merge_without_losing_counts() {
    let threads = 8u64;
    let per_thread = 10_000u64;
    let snapshots: Vec<MetricsSnapshot> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let registry = Registry::new();
                    let counter = registry.counter("stress.hits");
                    let hist = registry.histogram("stress.latency");
                    for i in 0..per_thread {
                        counter.incr();
                        hist.record(t * per_thread + i + 1);
                    }
                    registry.snapshot()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = MetricsSnapshot::from_entries(std::iter::empty());
    for snapshot in &snapshots {
        merged.merge(snapshot);
    }
    assert_eq!(merged.counter("stress.hits"), Some(threads * per_thread));
    let hist = merged.histogram("stress.latency").expect("histogram");
    assert_eq!(hist.count(), threads * per_thread);
    assert_eq!(hist.min(), 1);
    assert_eq!(hist.max(), threads * per_thread);
}

/// Every row of a parallel sweep carries its own per-point snapshot whose
/// link counters match that row's own outcome — worker threads never bleed
/// telemetry into each other's registries — and merging the per-row
/// snapshots reproduces the fleet-wide totals.
#[test]
fn parallel_sweep_rows_carry_isolated_per_point_metrics() {
    let grid = default_grid_for(&["kabylake-gen9"], 32);
    let results = SweepRunner::new(4).run(&grid);
    assert!(results.len() > 1);
    let mut merged = MetricsSnapshot::from_entries(std::iter::empty());
    let mut total_frames = 0u64;
    for result in &results {
        let outcome = result.outcome.as_ref().expect("grid points run");
        let metrics = outcome.metrics.as_ref().expect("telemetry on by default");
        assert_eq!(
            metrics.counter("link.frames_sent"),
            Some(outcome.frames_sent as u64),
            "{}: link counter must match the row's own stats",
            result.point.label()
        );
        if result.point.channel == ChannelKind::LlcPrimeProbe {
            assert!(
                metrics.counter_total("llc.") > 0,
                "{}: LLC points must count LLC traffic",
                result.point.label()
            );
        } else {
            assert!(
                metrics.counter_total("ring.") + metrics.counter_total("dram.") > 0,
                "{}: contention points must count ring or DRAM traffic",
                result.point.label()
            );
        }
        total_frames += outcome.frames_sent as u64;
        merged.merge(metrics);
    }
    assert_eq!(merged.counter("link.frames_sent"), Some(total_frames));
}

/// The overhead guard the issue demands: with telemetry disabled the quick
/// classic grid must stay inside the committed baseline's ±15 % goodput
/// gate. The registry gate is the only telemetry code on the hot path, and
/// the simulation itself is deterministic, so switching telemetry off must
/// not move the results at all — and the rows then carry no metrics.
#[test]
fn disabled_telemetry_passes_the_baseline_gate() {
    let path = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/bench/baseline.json"));
    let baseline = Baseline::load(path).expect("committed baseline loads");
    let grid = default_grid_for(&["kabylake-gen9"], 64);
    let results = SweepRunner::with_default_threads()
        .with_telemetry(false)
        .run(&grid);
    for result in &results {
        let outcome = result.outcome.as_ref().expect("grid points run");
        assert!(
            outcome.metrics.is_none(),
            "{}: disabled telemetry must drop the per-point snapshot",
            result.point.label()
        );
    }
    let report = baseline.compare(&results, DEFAULT_TOLERANCE);
    assert!(
        report.compared > 0,
        "the baseline must cover the quick classic grid"
    );
    assert!(
        report.passed(),
        "telemetry-off run regressed {} baseline cell(s)",
        report.regressions.len()
    );
}
