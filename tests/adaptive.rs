//! Integration tests of the `covert::adapt` subsystem on real simulated
//! channels: the closed-loop adaptive transceiver and the full-duplex TDD
//! scheduler, end to end across every crate.

use leaky_buddies::prelude::*;

/// The shared calm/burst noise program at a quarter of the sweep's phase
/// length, so a debug-mode test stays fast while the channel still crosses
/// regime boundaries mid-transmission.
fn short_phased_schedule() -> NoiseSchedule {
    NoiseSchedule::calm_burst(Time::from_us(3_000))
}

fn phased_contention_channel(seed: u64) -> ContentionChannel {
    let soc = SocConfig::kaby_lake_i7_7700k()
        .with_seed(seed)
        .with_noise_schedule(short_phased_schedule());
    ContentionChannel::new(ContentionChannelConfig {
        seed,
        soc,
        ..ContentionChannelConfig::paper_default()
    })
    .expect("channel setup")
}

#[test]
fn adaptive_transceiver_tracks_a_regime_change_on_a_real_channel() {
    let payload = test_pattern(1024, 42);
    let mut channel = phased_contention_channel(42);
    let mut controller = ThresholdPolicy::paper_default();
    let adaptive = AdaptiveTransceiver::new(AdaptiveConfig::paper_default());
    let (report, stats) = adaptive
        .transmit(&mut channel, &mut controller, &payload)
        .expect("transmission completes");
    assert_eq!(report.bit_count(), 1024);
    let summary = report.adaptation.as_ref().expect("adaptation recorded");
    assert_eq!(summary.policy, "threshold");
    // The transmission spans calm and burst phases; the controller must
    // have moved at least once, and the trace must account for every bit.
    assert!(summary.switches >= 1, "controller never moved");
    assert_eq!(summary.trace.total_payload_bits(), 1024);
    assert_eq!(
        summary.trace.total_wire_bits(),
        report.coding.expect("coding attached").wire_bits
    );
    assert_eq!(summary.trace.total_elapsed(), report.elapsed);
    assert!(stats.frames_sent >= summary.trace.windows.len());
    // Whatever the trajectory, no window ever ran a zero-rate setting.
    for window in &summary.trace.windows {
        assert!(window.symbol_repeat >= 1);
        assert!(window.wire_bits > 0);
    }
}

#[test]
fn adaptive_policies_deliver_usable_goodput_under_phased_noise() {
    // Not the full acceptance table (that lives in `repro --sweep` and
    // EXPERIMENTS.md) — just the end-to-end sanity that the loop is
    // productive, not pathological, on a real channel under real phases.
    let payload = test_pattern(768, 7);
    for kind in [PolicyKind::Threshold, PolicyKind::Aimd] {
        let mut channel = phased_contention_channel(7);
        let mut controller = kind.build(LinkSetting::lightest());
        let (report, _) = AdaptiveTransceiver::new(AdaptiveConfig::paper_default())
            .transmit(&mut channel, controller.as_mut(), &payload)
            .expect("transmission completes");
        assert!(
            report.goodput_kbps() > 10.0,
            "{kind}: goodput {:.1} kb/s",
            report.goodput_kbps()
        );
        assert!(
            report.residual_ber() < 0.25,
            "{kind}: residual {:.3}",
            report.residual_ber()
        );
    }
}

#[test]
fn duplex_scheduler_moves_asymmetric_chat_on_real_llc_channels() {
    let forward =
        LlcChannel::new(LlcChannelConfig::paper_default().with_direction(Direction::GpuToCpu))
            .expect("forward channel");
    let reverse = LlcChannel::new(
        LlcChannelConfig::paper_default()
            .with_direction(Direction::CpuToGpu)
            .with_seed(11),
    )
    .expect("reverse channel");
    let request = bytes_to_bits(b"KEY?");
    let reply = bytes_to_bits(b"0xDEADBEEF_0xCAFE");

    let run = |allocation: SlotAllocation, mut fwd: LlcChannel, mut rev: LlcChannel| {
        DuplexScheduler::new(
            DuplexConfig {
                base: TransceiverConfig::paper_default().with_code(LinkCodeKind::Crc8),
                ..DuplexConfig::paper_default()
            }
            .with_allocation(allocation),
        )
        .run(&mut fwd, &mut rev, &request, &reply)
        .expect("duplex run completes")
    };

    let strict = run(SlotAllocation::StrictAlternate, forward, reverse);
    // Both directions deliver their payloads (CRC-8 + retries keep the
    // short query clean; the long reply may carry residual errors on a
    // noisy system but must be mostly intact).
    assert_eq!(strict.forward.bit_count(), request.len());
    assert_eq!(strict.reverse.bit_count(), reply.len());
    assert!(strict.forward.residual_ber() < 0.05);
    assert!(strict.reverse.residual_ber() < 0.10);
    // Asymmetric backlogs force strict alternation to burn idle slots.
    assert!(strict.idle_slots() > 0, "strict must idle after the query");

    let forward =
        LlcChannel::new(LlcChannelConfig::paper_default().with_direction(Direction::GpuToCpu))
            .expect("forward channel");
    let reverse = LlcChannel::new(
        LlcChannelConfig::paper_default()
            .with_direction(Direction::CpuToGpu)
            .with_seed(11),
    )
    .expect("reverse channel");
    let weighted = run(SlotAllocation::DemandWeighted, forward, reverse);
    assert_eq!(weighted.idle_slots(), 0, "weighted allocation never idles");
    assert!(
        weighted.aggregate_goodput_kbps() > strict.aggregate_goodput_kbps(),
        "demand weighting must beat turn-taking: {:.1} vs {:.1} kb/s",
        weighted.aggregate_goodput_kbps(),
        strict.aggregate_goodput_kbps()
    );
}
