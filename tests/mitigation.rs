//! Section VI mitigation study: statically way-partitioning the LLC between
//! the CPU and the GPU (an Intel CAT-style policy) removes the cross-component
//! eviction the Prime+Probe channel depends on, while the contention channel —
//! which never relies on shared cache state — keeps working and would need the
//! additional traffic-isolation measures the paper lists.

use leaky_buddies::prelude::*;
use soc_sim::system::LlcPartition;

#[test]
fn partitioned_llc_prevents_cross_component_eviction() {
    // Mechanism check: with an even 8/8 split, GPU fills can no longer evict
    // a CPU-resident line no matter how many conflicting lines the GPU walks.
    let config = SocConfig::kaby_lake_noiseless().with_llc_partition(LlcPartition::even_split());
    let mut soc = Soc::new(config);
    let mut cpu = CpuThread::pinned(0);
    let mut gpu = GpuKernel::launch_attack_kernel();

    let victim = PhysAddr::new(0x77_0000);
    cpu.load(&mut soc, victim);
    assert!(soc.llc().contains(victim));

    let set = soc.llc().set_of(victim);
    let conflicts = soc.llc().enumerate_set_addresses(
        set,
        PhysAddr::new(0x2000_0000),
        3 * soc.llc().config().ways,
    );
    gpu.synchronize_to(cpu.now());
    for _ in 0..3 {
        gpu.parallel_load(&mut soc, &conflicts);
    }
    assert!(
        soc.llc().contains(victim),
        "a partitioned LLC must keep the CPU's line resident despite GPU conflict traffic"
    );

    // The reverse direction holds as well: CPU traffic cannot displace a
    // GPU-allocated line (the most recently walked conflict is certainly
    // resident in the GPU's partition).
    let gpu_line = *conflicts.last().expect("non-empty conflict set");
    assert!(soc.llc().contains(gpu_line));
    let more_conflicts = soc.llc().enumerate_set_addresses(
        set,
        PhysAddr::new(0x6000_0000),
        3 * soc.llc().config().ways,
    );
    cpu.synchronize_to(gpu.now());
    for &a in &more_conflicts {
        cpu.load(&mut soc, a);
        cpu.clflush(&mut soc, a); // keep the CPU partition churning
        cpu.load(&mut soc, a);
    }
    assert!(
        soc.llc().contains(gpu_line),
        "CPU traffic must not evict the GPU's partition"
    );
}

#[test]
fn partitioning_destroys_the_llc_covert_channel() {
    let vulnerable = LlcChannelConfig {
        soc: SocConfig::kaby_lake_noiseless(),
        ..LlcChannelConfig::paper_default()
    };
    let mitigated = LlcChannelConfig {
        soc: SocConfig::kaby_lake_noiseless().with_llc_partition(LlcPartition::even_split()),
        ..LlcChannelConfig::paper_default()
    };
    let bits = test_pattern(200, 61);

    let mut open_channel = LlcChannel::new(vulnerable).expect("setup");
    let open_report = open_channel.transmit(&bits);
    assert!(
        open_report.error_rate() < 0.05,
        "baseline channel must work"
    );

    let mut blocked_channel = LlcChannel::new(mitigated).expect("setup");
    let blocked_report = blocked_channel.transmit(&bits);
    assert!(
        blocked_report.error_rate() > 0.30,
        "under LLC partitioning the channel should degrade to near-coin-flip decoding, got {:.1}% errors",
        blocked_report.error_rate() * 100.0
    );
}

#[test]
fn partitioning_alone_does_not_stop_the_contention_channel() {
    // The paper notes that cache partitioning must be combined with traffic
    // isolation on the shared pathway; the contention channel indeed survives
    // LLC partitioning (both buffers still fit in their halves).
    let config = ContentionChannelConfig {
        soc: SocConfig::kaby_lake_noiseless().with_llc_partition(LlcPartition::even_split()),
        background_burst_prob: 0.0,
        ..ContentionChannelConfig::paper_default()
    };
    let mut channel = ContentionChannel::new(config).expect("setup");
    let bits = test_pattern(200, 62);
    let report = channel.transmit(&bits);
    assert!(
        report.error_rate() < 0.05,
        "ring contention must survive LLC partitioning (error {:.1}%)",
        report.error_rate() * 100.0
    );
}
