//! Property tests pinning `MemorySystem::access_batch` to the per-access
//! reference loop (`access_batch_reference`) across every backend in the
//! standard registry.
//!
//! The batched path is the sweep's hot loop; its contract is that a batch
//! produces exactly the outcomes and exactly the final clock that stepping
//! the same requests one at a time would — same cache state transitions,
//! same RNG draws, same latencies. Two instances of the same backend built
//! from the same seed therefore must agree bit-for-bit when one runs the
//! batch and the other runs the reference loop.
//!
//! The replaying backend cannot absorb arbitrary addresses (it panics on
//! divergence from its canned trace), so it is pinned separately: a
//! recorder captures the random workload on a simulating backend, and two
//! replayers of that trace are driven through the two paths.

use leaky_buddies::prelude::*;
use proptest::prelude::*;

/// Address span the random workloads draw from: enough lines to cover many
/// LLC sets on every topology, small enough to revisit lines and exercise
/// hits, evictions and flush-then-reload chains.
const ADDR_SPAN: u64 = 1 << 22;

/// Decodes one sampled word into a batch request. Two CPU cores are enough
/// to exercise cross-core state and exist on every registry topology.
fn decode(word: u64) -> BatchRequest {
    let paddr = PhysAddr::new((word >> 4) % ADDR_SPAN);
    match word % 3 {
        0 => BatchRequest::CpuLoad {
            core: ((word >> 2) % 2) as usize,
            paddr,
        },
        1 => BatchRequest::GpuLoad { paddr },
        _ => BatchRequest::Flush { paddr },
    }
}

/// Drives `requests` through both paths on two same-seed instances and
/// asserts bit-identical outcomes and final time.
fn assert_paths_agree(
    name: &str,
    mut batched: BackendInstance,
    mut reference: BackendInstance,
    requests: &[BatchRequest],
) {
    let mut batched_outcomes = Vec::new();
    let mut reference_outcomes = Vec::new();
    let batched_end = batched.access_batch(requests, Time::ZERO, &mut batched_outcomes);
    let reference_end = access_batch_reference(
        &mut reference,
        requests,
        Time::ZERO,
        &mut reference_outcomes,
    );
    assert_eq!(batched_end, reference_end, "{name}: final clock diverged");
    assert_eq!(
        batched_outcomes, reference_outcomes,
        "{name}: outcome sequence diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every simulating registry backend: batch == reference, bit for bit.
    #[test]
    fn batched_matches_reference_on_every_simulating_backend(
        words in proptest::collection::vec(any::<u64>(), 1..48),
        seed in 0u64..1 << 20,
    ) {
        let requests: Vec<BatchRequest> = words.iter().copied().map(decode).collect();
        let registry = BackendRegistry::standard();
        for name in registry.names() {
            let spec = registry.get(name).expect("listed backends resolve");
            if spec.is_replaying() {
                continue; // Pinned below against a recorded trace.
            }
            assert_paths_agree(name, spec.build(seed), spec.build(seed), &requests);
        }
    }

    /// The replaying backend: record the workload once, then both paths
    /// must serve the recorded outcomes identically.
    #[test]
    fn batched_matches_reference_on_a_trace_replayer(
        words in proptest::collection::vec(any::<u64>(), 1..48),
        seed in 0u64..1 << 20,
    ) {
        let requests: Vec<BatchRequest> = words.iter().copied().map(decode).collect();
        let mut recorder = TraceRecorder::new(Soc::new(
            SocConfig::kaby_lake_noiseless().with_seed(seed),
        ));
        let mut recorded = Vec::new();
        access_batch_reference(&mut recorder, &requests, Time::ZERO, &mut recorded);
        let (_, trace) = recorder.into_parts();
        assert_paths_agree(
            "trace-replayer",
            BackendInstance::Replaying(Box::new(TraceReplayer::new(trace.clone()))),
            BackendInstance::Replaying(Box::new(TraceReplayer::new(trace))),
            &requests,
        );
    }
}
