//! Ablation of Section III-E: GPU thread-level parallelism is what bridges
//! the 4:1 CPU/GPU clock disparity. Disabling it (a single access thread)
//! must lengthen every GPU phase and therefore cut the channel bandwidth and
//! raise the desynchronization error.

use leaky_buddies::prelude::*;

fn run(parallel: bool, bits: &[bool]) -> TransmissionReport {
    let config = LlcChannelConfig {
        gpu_parallelism: parallel,
        ..LlcChannelConfig::paper_default()
    };
    let mut channel = LlcChannel::new(config).expect("channel setup");
    channel.transmit(bits)
}

#[test]
fn disabling_gpu_parallelism_reduces_bandwidth() {
    let bits = test_pattern(150, 31);
    let with = run(true, &bits);
    let without = run(false, &bits);
    assert!(
        with.bandwidth_kbps() > without.bandwidth_kbps() * 1.5,
        "parallel {} kb/s vs serial {} kb/s",
        with.bandwidth_kbps(),
        without.bandwidth_kbps()
    );
}

#[test]
fn disabling_gpu_parallelism_does_not_reduce_error() {
    // With a serial GPU the phase-duration mismatch grows, so the error rate
    // must not improve meaningfully (it typically worsens); a small slack
    // absorbs the statistical wobble of a finite transmission.
    let bits = test_pattern(800, 32);
    let with = run(true, &bits);
    let without = run(false, &bits);
    assert!(
        without.error_rate() + 0.015 >= with.error_rate(),
        "serial error {} unexpectedly lower than parallel {}",
        without.error_rate(),
        with.error_rate()
    );
}

#[test]
fn parallel_probe_is_faster_than_serial_probe_at_the_soc_level() {
    // The mechanism behind the ablation: 16 ways probed in parallel cost
    // roughly one access latency, not sixteen.
    let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
    let addrs: Vec<PhysAddr> = (0..16u64)
        .map(|i| PhysAddr::new(0x900_0000 + i * 64))
        .collect();
    for &a in &addrs {
        soc.gpu_access(a, Time::ZERO);
    }
    let serial = soc
        .gpu_access_parallel(&addrs, 1, Time::from_us(10))
        .total_latency;
    let parallel = soc
        .gpu_access_parallel(&addrs, 16, Time::from_us(20))
        .total_latency;
    assert!(parallel.as_ps() * 4 < serial.as_ps());
}
